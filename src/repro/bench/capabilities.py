"""Table 1: the framework capability matrix, derived from this repo.

The paper's Table 1 compares large-scale computation frameworks on six
properties. Here the rows for the systems we actually implement are
*derived from the implementations* (each claim names the module that
realizes it), and the remaining rows reproduce the paper's published
assessments for context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: The columns of Table 1.
PROPERTIES = [
    "computation_model",
    "sparse_dependencies",
    "async_computation",
    "iterative",
    "prioritized_ordering",
    "enforce_consistency",
    "distributed",
]


@dataclass(frozen=True)
class FrameworkRow:
    """One framework's capability row."""

    name: str
    computation_model: str
    sparse_dependencies: bool
    async_computation: bool
    iterative: bool
    prioritized_ordering: bool
    enforce_consistency: bool
    distributed: bool
    implemented_in: str = ""


def capability_table() -> List[FrameworkRow]:
    """Table 1, with provenance for the systems built in this repo."""
    return [
        FrameworkRow(
            name="MPI",
            computation_model="Messaging",
            sparse_dependencies=True,
            async_computation=True,
            iterative=True,
            prioritized_ordering=False,
            enforce_consistency=False,
            distributed=True,
            implemented_in="repro.baselines.mpi",
        ),
        FrameworkRow(
            name="MapReduce",
            computation_model="Par. data-flow",
            sparse_dependencies=False,
            async_computation=False,
            iterative=False,
            prioritized_ordering=False,
            enforce_consistency=True,
            distributed=True,
            implemented_in="repro.baselines.mapreduce",
        ),
        FrameworkRow(
            name="Dryad",
            computation_model="Par. data-flow",
            sparse_dependencies=True,
            async_computation=False,
            iterative=False,
            prioritized_ordering=False,
            enforce_consistency=True,
            distributed=True,
        ),
        FrameworkRow(
            name="Pregel/BPGL",
            computation_model="GraphBSP",
            sparse_dependencies=True,
            async_computation=False,
            iterative=True,
            prioritized_ordering=False,
            enforce_consistency=True,
            distributed=True,
            implemented_in="repro.baselines.pregel",
        ),
        FrameworkRow(
            name="Piccolo",
            computation_model="Distr. map",
            sparse_dependencies=False,
            async_computation=False,
            iterative=True,
            prioritized_ordering=False,
            enforce_consistency=False,
            distributed=True,
        ),
        FrameworkRow(
            name="Pearce et al.",
            computation_model="Graph Visitor",
            sparse_dependencies=True,
            async_computation=True,
            iterative=True,
            prioritized_ordering=True,
            enforce_consistency=False,
            distributed=False,
        ),
        FrameworkRow(
            name="GraphLab",
            computation_model="GraphLab",
            sparse_dependencies=True,
            async_computation=True,
            iterative=True,
            prioritized_ordering=True,
            enforce_consistency=True,
            distributed=True,
            implemented_in=(
                "repro.core + repro.distributed (chromatic & locking "
                "engines, PriorityScheduler, consistency models)"
            ),
        ),
    ]


def graphlab_claims() -> Dict[str, str]:
    """Map each GraphLab 'yes' to the module that earns it."""
    return {
        "sparse_dependencies": "repro.core.graph.DataGraph scopes",
        "async_computation": "repro.distributed.locking.LockingEngine",
        "iterative": "repro.core.engine (Alg. 2 loop)",
        "prioritized_ordering": "repro.core.scheduler.PriorityScheduler",
        "enforce_consistency": "repro.core.consistency + scope guards",
        "distributed": "repro.distributed (atoms, ghosts, engines)",
    }
