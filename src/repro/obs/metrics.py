"""Counter plumbing and small numeric helpers for telemetry reports.

Counters are plain ``{name: int}`` dicts accumulated worker-side by
:class:`~repro.obs.events.SpanRecorder` and merged coordinator-side by
summing — every counter is a monotone total (entries placed in a ring,
overflow batches shipped, rounds observed), so addition is the one
merge rule needed across drain batches and across recovery respawns.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def merge_counters(
    into: Dict[str, int], batch: Optional[Dict[str, int]]
) -> Dict[str, int]:
    """Fold one drained counter dict into an accumulator (sum merge)."""
    if batch:
        for name, value in batch.items():
            into[name] = into.get(name, 0) + value
    return into


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of a non-empty list."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def log2_histogram(
    values: Sequence[float], scale: float = 1.0
) -> List[List[float]]:
    """Power-of-two histogram of ``values * scale``.

    Returns ``[bucket_floor, count]`` rows in ascending bucket order,
    where a value lands in the bucket ``[2**k, 2**(k+1))`` containing
    it; sub-1 values share the ``0`` bucket. Log-spaced buckets are the
    standard shape for latency distributions (grant latencies span
    microseconds to whole rounds — linear buckets would waste either
    end).
    """
    buckets: Dict[float, int] = {}
    for value in values:
        scaled = value * scale
        floor = 0.0
        if scaled >= 1.0:
            floor = 1.0
            while floor * 2.0 <= scaled:
                floor *= 2.0
        buckets[floor] = buckets.get(floor, 0) + 1
    return [[floor, buckets[floor]] for floor in sorted(buckets)]
