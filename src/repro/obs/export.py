"""Timeline exporters: JSONL and Chrome trace-event format.

JSONL is the archival form — one self-describing record per line
(``meta``, ``counters``, ``span``), round-trippable back into a
:class:`~repro.obs.timeline.RunTelemetry` with :func:`read_jsonl` so
the CLI can re-aggregate a file written by an earlier run.

The Chrome form follows the Trace Event Format's JSON-object flavor
(``{"traceEvents": [...]}``) using complete events (``ph: "X"``) with
microsecond ``ts``/``dur`` normalized to the earliest span, ``pid`` 0,
and one ``tid`` per track (0 = coordinator, ``w + 1`` = worker ``w``)
named via ``thread_name`` metadata events — loadable in
``chrome://tracing`` or Perfetto.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.events import SPAN_KINDS
from repro.obs.timeline import COORDINATOR_TRACK, RunTelemetry


def write_jsonl(telemetry: RunTelemetry, path: str) -> None:
    """Write one run's telemetry as self-describing JSONL records."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(
            json.dumps(
                {
                    "type": "meta",
                    "meta": telemetry.meta,
                    "clock_offsets": telemetry.clock_offsets,
                    "dropped": {str(k): v for k, v in telemetry.dropped.items()},
                }
            )
            + "\n"
        )
        for track, counters in sorted(telemetry.counters.items()):
            fh.write(
                json.dumps({"type": "counters", "track": track, "ctr": counters})
                + "\n"
            )
        for (track, kind, start, end, a, b) in telemetry.events:
            fh.write(
                json.dumps(
                    {
                        "type": "span",
                        "track": track,
                        "kind": kind,
                        "start": start,
                        "end": end,
                        "a": a,
                        "b": b,
                    }
                )
                + "\n"
            )


def read_jsonl(path: str) -> RunTelemetry:
    """Load a :func:`write_jsonl` file back into a RunTelemetry."""
    telemetry = RunTelemetry()
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            rtype = record.get("type")
            if rtype == "meta":
                telemetry.meta = record.get("meta", {})
                telemetry.clock_offsets = record.get("clock_offsets", [])
                telemetry.dropped = {
                    int(k): v for k, v in record.get("dropped", {}).items()
                }
            elif rtype == "counters":
                telemetry.counters[int(record["track"])] = record.get("ctr", {})
            elif rtype == "span":
                telemetry.events.append(
                    (
                        int(record["track"]),
                        record["kind"],
                        float(record["start"]),
                        float(record["end"]),
                        int(record.get("a", 0)),
                        int(record.get("b", 0)),
                    )
                )
    return telemetry


def _track_tid(track: int) -> int:
    return 0 if track == COORDINATOR_TRACK else track + 1


def chrome_trace(telemetry: RunTelemetry) -> Dict[str, Any]:
    """Build the Chrome trace-event JSON object for one run."""
    events: List[Dict[str, Any]] = []
    tracks = sorted({e[0] for e in telemetry.events})
    for track in tracks:
        name = "coordinator" if track == COORDINATOR_TRACK else f"worker {track}"
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": _track_tid(track),
                "args": {"name": name},
            }
        )
    if telemetry.events:
        origin = min(e[2] for e in telemetry.events)
    else:
        origin = 0.0
    for (track, kind, start, end, a, b) in telemetry.events:
        events.append(
            {
                "name": kind,
                "cat": "runtime",
                "ph": "X",
                "pid": 0,
                "tid": _track_tid(track),
                "ts": (start - origin) * 1e6,
                "dur": max(0.0, end - start) * 1e6,
                "args": {"a": a, "b": b},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(telemetry.meta),
    }


def write_chrome_trace(telemetry: RunTelemetry, path: str) -> None:
    """Write the Chrome trace-event JSON object to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(telemetry), fh)


def validate_chrome_trace(obj: Any) -> List[str]:
    """Check an object against the trace-event schema we emit.

    Returns a list of human-readable problems (empty = valid). Checks
    the JSON-object container shape, every event's required fields and
    types, and that ``X`` events carry non-negative microsecond
    ``ts``/``dur`` and a known span kind.
    """
    problems: List[str] = []
    if not isinstance(obj, dict):
        return ["top level is not a JSON object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ['missing or non-list "traceEvents"']
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "M"):
            problems.append(f"{where}: unexpected ph {ph!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        if not isinstance(event.get("tid"), int) or event.get("tid", -1) < 0:
            problems.append(f"{where}: tid must be a non-negative int")
        if ph == "M":
            continue
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"{where}: {key} must be a non-negative number")
        if event.get("name") not in SPAN_KINDS:
            problems.append(f"{where}: unknown span kind {event.get('name')!r}")
    return problems
