"""Aggregation over an assembled run timeline.

Turns a :class:`~repro.obs.timeline.RunTelemetry` into the quantities
the paper's evaluation is built on: per-phase time shares (where does a
worker's round go — compute, lock-wait, ghost-apply, serialize,
barrier-idle, snapshot), per-worker load imbalance, lock-chain
grant-latency histograms tagged with pipeline occupancy (the Fig. 3b/8b
quantity), plane ring occupancy/overflow, and snapshot/recovery cost.

Attribution rule: a worker's wall time is ``last end - first start`` on
its track; its attributed time is the sum of the six busy/idle phase
kinds (``compute``+``kernel`` fold into "compute"), capped at wall.
``lockwait`` spans are *excluded* from attribution — they measure
request→grant latency of pipelined chains and deliberately overlap
busy spans (that overlap *is* latency hiding) — and are reported
separately as the grant-latency distribution.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.metrics import log2_histogram, percentile
from repro.obs.timeline import COORDINATOR_TRACK, RunTelemetry

#: Phases that partition a worker's wall time in reports. ``kernel``
#: spans are folded into ``compute``.
PHASES = ("compute", "lockwait", "ghost", "ser", "idle", "snap")

_ATTRIBUTED = {"compute", "kernel", "ghost", "ser", "idle", "snap"}


def _phase_of(kind: str) -> Optional[str]:
    if kind == "kernel":
        return "compute"
    if kind in PHASES and kind != "lockwait":
        return kind
    return None


def summarize(telemetry: RunTelemetry) -> Dict[str, Any]:
    """Aggregate one run's timeline into a plain JSON-able report dict.

    Keys: ``meta``, ``phases`` (per-phase seconds + share of total
    worker wall), ``attribution`` (fraction of worker wall covered by
    phase spans — the >= 95 % acceptance quantity), ``workers``
    (per-worker wall/busy/share rows), ``load_imbalance`` (max busy /
    mean busy), ``grant_latency`` (count/percentiles/log2 histogram of
    lock-chain latencies, with occupancy stats), ``plane`` (ring
    occupancy + overflow), ``snapshots`` / ``recoveries`` (coordinator
    span totals), ``coordinator`` (launch/round/run seconds) and
    ``dropped``.
    """
    per_worker: Dict[int, Dict[str, float]] = {}
    walls: Dict[int, List[float]] = {}
    grant_lat: List[float] = []
    grant_occ: List[int] = []
    grant_hops: List[int] = []
    coord_secs: Dict[str, float] = {}
    coord_counts: Dict[str, int] = {}
    serve_lat: Dict[str, List[float]] = {"read": [], "write": []}
    serve_depth: List[int] = []

    for (track, kind, start, end, a, b) in telemetry.events:
        dur = end - start
        if track == COORDINATOR_TRACK:
            if kind in serve_lat:
                # Serving request spans (repro.serve): admission ->
                # reply, with the queue depth at admission in `a`. Kept
                # out of the coordinator phase totals — requests overlap
                # rounds by design.
                serve_lat[kind].append(dur)
                serve_depth.append(a)
                continue
            coord_secs[kind] = coord_secs.get(kind, 0.0) + dur
            coord_counts[kind] = coord_counts.get(kind, 0) + 1
            continue
        bounds = walls.get(track)
        if bounds is None:
            walls[track] = [start, end]
        else:
            if start < bounds[0]:
                bounds[0] = start
            if end > bounds[1]:
                bounds[1] = end
        if kind == "lockwait":
            grant_lat.append(dur)
            grant_occ.append(a)
            grant_hops.append(b)
            continue
        phase = _phase_of(kind)
        if phase is None:
            continue
        acc = per_worker.setdefault(track, {})
        acc[phase] = acc.get(phase, 0.0) + dur

    worker_rows: List[Dict[str, Any]] = []
    phase_secs = {phase: 0.0 for phase in PHASES}
    total_wall = 0.0
    total_attr = 0.0
    busies: List[float] = []
    for w in sorted(walls):
        wall = max(0.0, walls[w][1] - walls[w][0])
        acc = per_worker.get(w, {})
        raw = sum(acc.values())
        attributed = min(wall, raw) if wall > 0.0 else raw
        scale = attributed / raw if raw > 0.0 else 0.0
        for phase, secs in acc.items():
            phase_secs[phase] += secs * scale
        busy = sum(
            acc.get(p, 0.0) for p in ("compute", "ghost", "ser", "snap")
        )
        busies.append(busy)
        total_wall += wall
        total_attr += attributed
        worker_rows.append(
            {
                "worker": w,
                "wall_seconds": wall,
                "attributed_seconds": attributed,
                "busy_seconds": busy,
                "phases": {p: acc.get(p, 0.0) for p in PHASES if acc.get(p)},
            }
        )

    phases = {
        phase: {
            "seconds": phase_secs[phase],
            "share": (phase_secs[phase] / total_wall) if total_wall > 0 else 0.0,
        }
        for phase in PHASES
    }
    attribution = (total_attr / total_wall) if total_wall > 0 else 0.0
    mean_busy = (sum(busies) / len(busies)) if busies else 0.0
    load_imbalance = (max(busies) / mean_busy) if busies and mean_busy > 0 else 1.0

    grant: Dict[str, Any] = {"count": len(grant_lat)}
    if grant_lat:
        grant.update(
            {
                "p50_us": percentile(grant_lat, 50) * 1e6,
                "p90_us": percentile(grant_lat, 90) * 1e6,
                "p99_us": percentile(grant_lat, 99) * 1e6,
                "max_us": max(grant_lat) * 1e6,
                "hist_us": log2_histogram(grant_lat, scale=1e6),
                "occupancy_mean": sum(grant_occ) / len(grant_occ),
                "occupancy_max": max(grant_occ),
                "hops_max": max(grant_hops),
            }
        )

    plane: Dict[str, Any] = {}
    ring_rounds = 0
    ring_v = ring_e = overflow = 0
    for track, counters in telemetry.counters.items():
        if track == COORDINATOR_TRACK:
            continue
        ring_rounds += counters.get("plane_rounds", 0)
        ring_v += counters.get("plane_ring_v", 0)
        ring_e += counters.get("plane_ring_e", 0)
        overflow += counters.get("plane_overflow_batches", 0)
    if ring_rounds:
        plane["rounds"] = ring_rounds
        plane["ring_v_entries"] = ring_v
        plane["ring_e_entries"] = ring_e
        plane["overflow_batches"] = overflow
        cap_v = telemetry.meta.get("ring_v") or 0
        cap_e = telemetry.meta.get("ring_e") or 0
        if cap_v:
            plane["ring_v_occupancy"] = ring_v / (ring_rounds * cap_v)
        if cap_e:
            plane["ring_e_occupancy"] = ring_e / (ring_rounds * cap_e)

    serving: Dict[str, Any] = {}
    if serve_lat["read"] or serve_lat["write"]:
        for op, lats in serve_lat.items():
            if not lats:
                continue
            serving[op] = {
                "count": len(lats),
                "p50_ms": percentile(lats, 50) * 1e3,
                "p95_ms": percentile(lats, 95) * 1e3,
                "p99_ms": percentile(lats, 99) * 1e3,
                "max_ms": max(lats) * 1e3,
                "hist_us": log2_histogram(lats, scale=1e6),
            }
        serving["requests"] = len(serve_lat["read"]) + len(serve_lat["write"])
        serving["queue_depth_mean"] = sum(serve_depth) / len(serve_depth)
        serving["queue_depth_max"] = max(serve_depth)
        serving["rejected"] = telemetry.counters.get(
            COORDINATOR_TRACK, {}
        ).get("serve_rejected", 0)

    report = {
        "meta": dict(telemetry.meta),
        "serving": serving,
        "phases": phases,
        "attribution": attribution,
        "workers": worker_rows,
        "load_imbalance": load_imbalance,
        "grant_latency": grant,
        "plane": plane,
        "snapshots": {
            "count": coord_counts.get("snap", 0),
            "seconds": coord_secs.get("snap", 0.0),
        },
        "recoveries": {
            "count": coord_counts.get("recover", 0),
            "seconds": coord_secs.get("recover", 0.0),
        },
        "coordinator": {
            "launch_seconds": coord_secs.get("launch", 0.0),
            "rounds": coord_counts.get("round", 0),
            "round_seconds": coord_secs.get("round", 0.0),
            "run_seconds": coord_secs.get("run", 0.0),
        },
        "dropped": telemetry.total_dropped(),
    }
    return report


def phase_share_fractions(telemetry: RunTelemetry, digits: int = 4) -> Dict[str, float]:
    """Rounded ``{phase: share}`` map — the shape stored in BENCH_core."""
    report = summarize(telemetry)
    return {
        phase: round(entry["share"], digits)
        for phase, entry in report["phases"].items()
    }


def _fmt_secs(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1e3:7.2f}ms"


def format_report(report: Dict[str, Any]) -> str:
    """Render a summarize() dict as the CLI's phase-breakdown table."""
    meta = report.get("meta", {})
    lines = []
    header = "run telemetry"
    tags = [
        str(meta.get(k))
        for k in ("engine", "backend", "num_workers", "pipeline_window")
        if meta.get(k) is not None
    ]
    if tags:
        header += "  [" + " ".join(tags) + "]"
    lines.append(header)
    lines.append("")
    lines.append("phase breakdown (share of total worker wall):")
    lines.append(f"  {'phase':<10} {'seconds':>10} {'share':>8}")
    for phase in PHASES:
        entry = report["phases"][phase]
        lines.append(
            f"  {phase:<10} {_fmt_secs(entry['seconds']):>10} "
            f"{entry['share'] * 100:7.2f}%"
        )
    lines.append(f"  attribution: {report['attribution'] * 100:.2f}% of worker wall")
    lines.append(f"  load imbalance (max busy / mean busy): {report['load_imbalance']:.3f}")
    grant = report.get("grant_latency") or {}
    if grant.get("count"):
        lines.append("")
        lines.append(
            "lock grant latency: "
            f"n={grant['count']} p50={grant['p50_us']:.1f}us "
            f"p90={grant['p90_us']:.1f}us p99={grant['p99_us']:.1f}us "
            f"max={grant['max_us']:.1f}us"
        )
        lines.append(
            "  pipeline occupancy: "
            f"mean={grant['occupancy_mean']:.2f} max={grant['occupancy_max']}"
        )
        lines.append("  latency histogram (us, log2 buckets):")
        for floor, count in grant["hist_us"]:
            label = f"<1" if floor == 0 else f">={floor:g}"
            lines.append(f"    {label:>10} {count:>8}")
    plane = report.get("plane") or {}
    if plane:
        occ_bits = []
        if "ring_v_occupancy" in plane:
            occ_bits.append(f"v={plane['ring_v_occupancy'] * 100:.1f}%")
        if "ring_e_occupancy" in plane:
            occ_bits.append(f"e={plane['ring_e_occupancy'] * 100:.1f}%")
        occ = (" occupancy " + " ".join(occ_bits)) if occ_bits else ""
        lines.append("")
        lines.append(
            f"shm plane: rounds={plane['rounds']} "
            f"ring_v={plane['ring_v_entries']} ring_e={plane['ring_e_entries']} "
            f"overflow_batches={plane['overflow_batches']}{occ}"
        )
    serving = report.get("serving") or {}
    if serving:
        lines.append("")
        lines.append(
            f"serving: requests={serving.get('requests', 0)} "
            f"rejected={serving.get('rejected', 0)} "
            f"queue_depth mean={serving.get('queue_depth_mean', 0.0):.2f} "
            f"max={serving.get('queue_depth_max', 0)}"
        )
        for op in ("read", "write"):
            entry = serving.get(op)
            if not entry:
                continue
            lines.append(
                f"  {op:<5} n={entry['count']} "
                f"p50={entry['p50_ms']:.3f}ms "
                f"p95={entry['p95_ms']:.3f}ms "
                f"p99={entry['p99_ms']:.3f}ms "
                f"max={entry['max_ms']:.3f}ms"
            )
    snaps = report.get("snapshots") or {}
    if snaps.get("count"):
        lines.append(
            f"snapshots: {snaps['count']} totalling {snaps['seconds'] * 1e3:.2f}ms"
        )
    recov = report.get("recoveries") or {}
    if recov.get("count"):
        lines.append(
            f"recoveries: {recov['count']} totalling {recov['seconds'] * 1e3:.2f}ms"
        )
    coord = report.get("coordinator") or {}
    lines.append("")
    lines.append(
        "coordinator: "
        f"launch={coord.get('launch_seconds', 0.0) * 1e3:.2f}ms "
        f"rounds={coord.get('rounds', 0)} "
        f"round_total={_fmt_secs(coord.get('round_seconds', 0.0)).strip()} "
        f"run={_fmt_secs(coord.get('run_seconds', 0.0)).strip()}"
    )
    if report.get("dropped"):
        lines.append(f"dropped spans (ring cap overflow): {report['dropped']}")
    return "\n".join(lines)
