"""Runtime observability: spans, timelines, reports, trace export.

See :mod:`repro.obs.events` for the wire contract, and the ROADMAP's
"Observability (PR 7)" section for the piggyback rule and overhead
budget. The one invariant everything here obeys: observation never
steers — telemetry on/off must not change any engine result bit.
"""

from repro.obs.events import (
    COORDINATOR_KINDS,
    DEFAULT_CAP,
    SPAN_KINDS,
    WORKER_KINDS,
    SpanRecorder,
    Stopwatch,
)
from repro.obs.export import (
    chrome_trace,
    read_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import log2_histogram, merge_counters, percentile
from repro.obs.report import PHASES, format_report, phase_share_fractions, summarize
from repro.obs.timeline import (
    COORDINATOR_TRACK,
    RunTelemetry,
    TimelineCollector,
    drain_telemetry,
)

__all__ = [
    "COORDINATOR_KINDS",
    "COORDINATOR_TRACK",
    "DEFAULT_CAP",
    "PHASES",
    "RunTelemetry",
    "SPAN_KINDS",
    "SpanRecorder",
    "Stopwatch",
    "TimelineCollector",
    "WORKER_KINDS",
    "chrome_trace",
    "drain_telemetry",
    "format_report",
    "log2_histogram",
    "merge_counters",
    "percentile",
    "phase_share_fractions",
    "read_jsonl",
    "summarize",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
