"""Coordinator-side telemetry assembly: one timeline per run.

Workers record spans in their own ``perf_counter()`` domain and drain
them as piggybacked batches on round replies
(:mod:`repro.obs.events`). This module is the receiving end: the
engine feeds every reply's batch into a :class:`TimelineCollector`,
and at run end :meth:`TimelineCollector.finalize` maps each worker's
events into the coordinator's clock domain using the offsets measured
by the transport's launch handshake, merges the coordinator's own
recorder, and produces one :class:`RunTelemetry` — the object surfaced
as ``RuntimeRunResult.telemetry`` and consumed by
:mod:`repro.obs.report` / :mod:`repro.obs.export`.

Clock-offset handshake: each worker's ready ack carries a
``perf_counter()`` reading taken worker-side (``"clk"``); the
coordinator brackets it with its own readings around spawn and
ack-receipt. When the worker's reading falls inside the bracket the
two clocks share an epoch (the same-machine monotonic clock — the
normal case for both transports) and the offset is exactly ``0.0``;
otherwise the midpoint estimate ``(spawn + receipt) / 2 - clk`` maps
worker times into coordinator time to within half the handshake's
round-trip. Observation never steers: offsets shift reported
timestamps only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.obs.events import DEFAULT_CAP, SpanRecorder
from repro.obs.metrics import merge_counters

#: Track id of the coordinator in assembled timelines (workers use
#: their worker id, always >= 0).
COORDINATOR_TRACK = -1

#: An assembled event: ``(track, kind, start, end, a, b)`` with
#: ``start``/``end`` in the coordinator's clock domain.
TimelineEvent = Tuple[int, str, float, float, int, int]


@dataclass
class RunTelemetry:
    """One run's assembled telemetry (coordinator clock domain).

    ``events`` are sorted by start time; ``counters`` and ``dropped``
    are keyed by track (only tracks with data appear);
    ``clock_offsets`` are the per-worker offsets that were applied;
    ``meta`` carries run identity (engine, backend, worker count, ring
    capacities, pipeline window, ...) written by the engine.
    """

    events: List[TimelineEvent] = field(default_factory=list)
    counters: Dict[int, Dict[str, int]] = field(default_factory=dict)
    dropped: Dict[int, int] = field(default_factory=dict)
    clock_offsets: List[float] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def num_workers(self) -> int:
        return int(self.meta.get("num_workers") or len(self.clock_offsets))

    def spans(
        self,
        kind: Optional[str] = None,
        track: Optional[int] = None,
    ) -> Iterator[TimelineEvent]:
        """Events filtered by kind and/or track."""
        for event in self.events:
            if kind is not None and event[1] != kind:
                continue
            if track is not None and event[0] != track:
                continue
            yield event

    def worker_tracks(self) -> List[int]:
        """Worker ids that recorded at least one event, ascending."""
        return sorted({e[0] for e in self.events if e[0] >= 0})

    def total_dropped(self) -> int:
        return sum(self.dropped.values())


class TimelineCollector:
    """Accumulates per-worker batches and the coordinator's recorder.

    The engine owns one per telemetry-enabled run: its ``coordinator``
    recorder is handed to the transport (launch/round spans) and to
    every coordinator :class:`~repro.obs.events.Stopwatch`; worker
    batches arrive via :func:`drain_telemetry` as rounds complete.
    """

    def __init__(self, num_workers: int, coordinator_cap: int = 8 * DEFAULT_CAP) -> None:
        self.num_workers = num_workers
        self.coordinator = SpanRecorder(cap=coordinator_cap)
        self._events: List[List[Tuple]] = [[] for _ in range(num_workers)]
        self._counters: List[Dict[str, int]] = [{} for _ in range(num_workers)]
        self._dropped = [0] * num_workers

    def add_worker(self, worker_id: int, batch: Optional[Dict[str, Any]]) -> None:
        """Fold one drained worker batch into the run's accumulation."""
        if not batch:
            return
        events = batch.get("ev")
        if events:
            self._events[worker_id].extend(events)
        merge_counters(self._counters[worker_id], batch.get("ctr"))
        self._dropped[worker_id] += batch.get("dropped", 0)

    def finalize(
        self,
        clock_offsets: Optional[Iterable[float]] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> RunTelemetry:
        """Assemble the run timeline in the coordinator's clock domain."""
        offsets = list(clock_offsets or ())
        if len(offsets) < self.num_workers:
            offsets = offsets + [0.0] * (self.num_workers - len(offsets))
        events: List[TimelineEvent] = []
        counters: Dict[int, Dict[str, int]] = {}
        dropped: Dict[int, int] = {}
        for w in range(self.num_workers):
            off = offsets[w]
            for (kind, start, end, a, b) in self._events[w]:
                events.append((w, kind, start + off, end + off, a, b))
            if self._counters[w]:
                counters[w] = dict(self._counters[w])
            if self._dropped[w]:
                dropped[w] = self._dropped[w]
        coord = self.coordinator.drain()
        if coord:
            for (kind, start, end, a, b) in coord["ev"]:
                events.append((COORDINATOR_TRACK, kind, start, end, a, b))
            if coord["ctr"]:
                counters[COORDINATOR_TRACK] = coord["ctr"]
            if coord["dropped"]:
                dropped[COORDINATOR_TRACK] = coord["dropped"]
        events.sort(key=lambda e: (e[2], e[0]))
        full_meta = dict(meta or {})
        full_meta.setdefault("num_workers", self.num_workers)
        return RunTelemetry(
            events=events,
            counters=counters,
            dropped=dropped,
            clock_offsets=offsets,
            meta=full_meta,
        )


def drain_telemetry(
    replies: List[Any], collector: Optional[TimelineCollector]
) -> List[Any]:
    """Strip piggybacked telemetry batches off one round's replies.

    Workers attach their drained batch to whatever reply shape the
    command produced: tuple replies grow a trailing element, dict
    replies a ``"tel"`` key. Engines funnel every round through this
    helper so no other consumer (snapshot journaling, collect
    write-back, sync combination) ever sees the telemetry field. With
    ``collector=None`` (telemetry off) the replies pass through
    untouched.
    """
    if collector is None:
        return replies
    out: List[Any] = []
    for w, reply in enumerate(replies):
        if isinstance(reply, tuple):
            if len(reply) > 2:
                collector.add_worker(w, reply[2])
                reply = reply[:2]
        elif isinstance(reply, dict):
            batch = reply.pop("tel", None)
            if batch:
                collector.add_worker(w, batch)
        out.append(reply)
    return out
