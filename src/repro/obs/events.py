"""Low-overhead span/counter recording — the telemetry wire contract.

Every runtime participant (worker processes, the coordinator, the
transports) records into a :class:`SpanRecorder`; disabled telemetry is
one falsy check on the hot path (``self._obs`` is ``None``), the same
discipline as scope read/write tracing. Workers drain their recorder at
the end of every ``handle()`` and the batch piggybacks on the round
reply already crossing the pipe, so telemetry adds **zero extra
barriers** and no extra syscalls — only bytes on messages that were
being sent anyway.

Wire contract (schema)
----------------------
A drained batch is a plain picklable/JSON-able dict::

    {
        "ev": [(kind, start, end, a, b), ...],   # span tuples
        "ctr": {name: int, ...},                 # monotone counters
        "dropped": int,                          # spans lost to the cap
    }

Span tuples are ``(kind, start, end, a, b)``:

``kind``
    One short string from the fixed vocabulary below. Consumers must
    ignore kinds they do not know (forward compatibility).
``start`` / ``end``
    ``time.perf_counter()`` readings **in the recorder's own clock
    domain**. The clock-offset handshake at transport launch maps each
    worker's domain into the coordinator's when the timeline is
    assembled (:mod:`repro.obs.timeline`); raw batches are never
    cross-comparable.
``a`` / ``b``
    Two kind-specific integer tags (0 when unused), kept positional so
    a span is one tuple of five scalars — no per-span dict allocation.

Worker span kinds:

========  ==========================================================
kind      meaning (``a`` / ``b`` tags)
========  ==========================================================
compute   scalar update execution: one chromatic color part or one
          locking ``_pump`` drive (``a`` = updates executed)
kernel    batch-kernel color part (``a`` = frontier size)
lockwait  one lock chain's request→grant latency, recorded when the
          chain completes (``a`` = pipeline occupancy — scopes in
          flight at completion, the Fig. 3b/8b tag; ``b`` = chain
          hops). Overlaps busy spans by design: hidden latency.
ghost     routed-inbox application: ghost data (ring descriptors +
          pickled batches), remote schedules, lock-protocol
          deliveries, globals
ser       serialization boundary work: command unpickle, reply
          pickle, dirty-state collection into ring/wire form
idle      barrier idle: blocked on the coordinator pipe waiting for
          the next command
snap      snapshot/recovery work: checkpoint journaling, restore,
          Chandy–Lamport snapshot scopes
========  ==========================================================

Coordinator span kinds: ``launch`` (transport launch barrier),
``round`` (one full transport round; ``a`` = completed-round number),
``run`` (whole engine run), ``snap`` (snapshot cost, sync or async),
``recover`` (respawn + rollback). Both domains share ``SpanRecorder``;
the coordinator's drains once, at timeline finalization.

Counters (sum-merged, see :mod:`repro.obs.metrics`):
``plane_ring_v`` / ``plane_ring_e`` — dirty-ring entries placed per
command (ring occupancy when divided by ``plane_rounds`` × capacity),
``plane_rounds`` — commands with an attached ring, and
``plane_overflow_batches`` — dirty batches that overflowed the ring
onto the pickled pipe wire.

The reply-pickle ``ser`` span necessarily rides the *next* round's
batch (it happens after the current reply is drained); the final
reply's pickle cost is unobserved. Both are inherent to the piggyback
rule and too small to matter.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

#: Span kinds recorded worker-side.
WORKER_KINDS = ("compute", "kernel", "lockwait", "ghost", "ser", "idle", "snap")
#: Span kinds recorded coordinator-side. ``net`` brackets one
#: connection re-establishment on a socket transport (PR 9): the wall
#: time a round spent waiting out a drop, reconnect, and replay.
#: ``read`` / ``write`` are serving request spans (``repro.serve``,
#: PR 10): admission to reply for one client read or write (``a`` =
#: queue depth at admission), recorded on the coordinator track by the
#: service front end.
COORDINATOR_KINDS = (
    "launch", "round", "run", "snap", "recover", "net", "read", "write",
)
#: Every kind a conforming producer may emit.
SPAN_KINDS = frozenset(WORKER_KINDS) | frozenset(COORDINATOR_KINDS)

#: Default per-drain span capacity. Workers drain every round, so the
#: cap bounds one round's recording volume, not the run's.
DEFAULT_CAP = 8192

SpanTuple = Tuple[str, float, float, int, int]


class SpanRecorder:
    """Bounded span + counter buffer (one per recording participant).

    The hot-path contract: callers hold the recorder in a local /
    attribute that is ``None`` when telemetry is off, so the disabled
    cost is a single falsy check. When on, recording a span is one
    ``perf_counter`` pair, a tuple build, and a bounded ``list.append``
    — no locks, no I/O, no dict per span. Overflow drops the span and
    counts it (``dropped``), never blocks.
    """

    __slots__ = ("events", "counters", "dropped", "cap")

    def __init__(self, cap: int = DEFAULT_CAP) -> None:
        self.events: List[SpanTuple] = []
        self.counters: Dict[str, int] = {}
        self.dropped = 0
        self.cap = cap

    def span(
        self, kind: str, start: float, end: float, a: int = 0, b: int = 0
    ) -> None:
        """Record one closed interval in this recorder's clock domain."""
        events = self.events
        if len(events) < self.cap:
            events.append((kind, start, end, a, b))
        else:
            self.dropped += 1

    def count(self, name: str, n: int = 1) -> None:
        """Bump a monotone counter (sum-merged at assembly)."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def drain(self) -> Optional[Dict[str, Any]]:
        """Detach and return the buffered batch; ``None`` when empty.

        The returned dict is the wire batch documented in the module
        docstring; the recorder resets to empty, so every batch is
        delivered exactly once (piggybacked on the reply being built).
        """
        if not self.events and not self.counters and not self.dropped:
            return None
        batch = {
            "ev": self.events,
            "ctr": self.counters,
            "dropped": self.dropped,
        }
        self.events = []
        self.counters = {}
        self.dropped = 0
        return batch


class Stopwatch:
    """Measure one interval; record it as a span when a recorder is on.

    The shared implementation behind every coordinator timing site
    (launch, run wall, snapshot cost, recovery): the measurement always
    happens — engines need the seconds for ``launch_seconds``,
    ``SnapshotCadence.mark`` and ``recovery_seconds`` whether or not
    telemetry is enabled — and the span is emitted only when
    ``recorder`` is not ``None``, preserving the one-falsy-check
    discipline. Starts at construction; usable as a context manager or
    via an explicit :meth:`stop`.
    """

    __slots__ = ("recorder", "kind", "a", "b", "start", "end", "seconds")

    def __init__(
        self,
        recorder: Optional[SpanRecorder] = None,
        kind: str = "run",
        a: int = 0,
        b: int = 0,
    ) -> None:
        self.recorder = recorder
        self.kind = kind
        self.a = a
        self.b = b
        self.start = perf_counter()
        self.end = self.start
        self.seconds = 0.0

    def elapsed(self) -> float:
        """Seconds since construction, without closing the interval."""
        return perf_counter() - self.start

    def stop(self) -> float:
        """Close the interval; record the span; return its seconds."""
        self.end = perf_counter()
        self.seconds = self.end - self.start
        recorder = self.recorder
        if recorder is not None:
            recorder.span(self.kind, self.start, self.end, self.a, self.b)
        return self.seconds

    def __enter__(self) -> "Stopwatch":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.stop()
