"""CLI over exported telemetry files.

    python -m repro.obs report run.trace.jsonl     # phase breakdown table
    python -m repro.obs chrome run.trace.jsonl out.json
    python -m repro.obs validate out.json          # trace-event schema check
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.obs.export import read_jsonl, validate_chrome_trace, write_chrome_trace
from repro.obs.report import format_report, summarize


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="print the phase-breakdown table")
    p_report.add_argument("trace", help="JSONL telemetry file (write_jsonl output)")
    p_report.add_argument(
        "--json", action="store_true", help="emit the raw report dict as JSON"
    )

    p_chrome = sub.add_parser("chrome", help="convert JSONL telemetry to Chrome trace JSON")
    p_chrome.add_argument("trace", help="JSONL telemetry file")
    p_chrome.add_argument("out", help="output Chrome trace-event JSON path")

    p_validate = sub.add_parser("validate", help="validate a Chrome trace JSON file")
    p_validate.add_argument("trace", help="Chrome trace-event JSON file")

    args = parser.parse_args(argv)

    if args.command == "report":
        report = summarize(read_jsonl(args.trace))
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(format_report(report))
        return 0

    if args.command == "chrome":
        write_chrome_trace(read_jsonl(args.trace), args.out)
        print(f"wrote {args.out}")
        return 0

    if args.command == "validate":
        with open(args.trace, "r", encoding="utf-8") as fh:
            obj = json.load(fh)
        problems = validate_chrome_trace(obj)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print(f"{args.trace}: valid trace-event JSON")
        return 0

    return 2


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe — not an
        # error worth a traceback; 141 matches shell SIGPIPE convention.
        sys.stderr.close()
        sys.exit(141)
