"""Fig. 9: dynamic ALS convergence and EC2 price/performance.

(a) dynamic (GraphLab, priority + adaptive) vs BSP (Pregel-style
    static sweeps) ALS: test error vs updates — dynamic reaches the
    same error in roughly half the updates;
(b) price vs runtime for GraphLab and Hadoop on Netflix with
    fine-grained EC2 billing: GraphLab is ~two orders of magnitude
    more cost-effective.
"""

from repro.apps import (
    initialize_factors,
    make_als_update,
    static_sweep_schedule,
    test_rmse,
)
from repro.baselines import (
    graphlab_runtime,
    hadoop_runtime,
    netflix_workload,
)
from repro.bench import Figure
from repro.core import SequentialEngine
from repro.datasets import synthetic_netflix
from repro.sim import CC1_4XLARGE

D = 4
CHECKPOINT = 200
CHECKPOINTS = 8
MACHINES = [4, 8, 16, 24, 32, 40, 48, 56, 64]


def run_fig9a():
    data = synthetic_netflix(
        num_users=200, num_movies=60, ratings_per_user=18, seed=13
    )
    sweeps = 8

    # BSP baseline: fixed alternating full sweeps over the two sides,
    # error sampled after each sweep — every vertex recomputed every
    # sweep whether it moved or not.
    initialize_factors(data.graph, D, seed=2)
    static = make_als_update(d=D, dynamic=False)
    engine = SequentialEngine(data.graph, static, scheduler="fifo")
    sides = static_sweep_schedule(data.graph, data.side_fn)
    bsp_errors = []
    bsp_updates = 0
    for _ in range(sweeps):
        for side in sides:
            engine.run(initial=side)
            bsp_updates += len(side)
        bsp_errors.append(test_rmse(data.graph, data.test_ratings))

    # Dynamic GraphLab: priority scheduler, adaptive rescheduling; runs
    # until the task set drains (converged vertices stop being updated).
    initialize_factors(data.graph, D, seed=2)
    dynamic = make_als_update(d=D, epsilon=1e-2)
    n = data.graph.num_vertices
    engine = SequentialEngine(
        data.graph, dynamic, scheduler="priority", max_updates=n
    )
    dyn_errors = []
    dyn_updates = 0
    for leg in range(sweeps):
        result = engine.run(
            initial=data.graph.vertices() if leg == 0 else ()
        )
        dyn_updates += result.num_updates
        dyn_errors.append(test_rmse(data.graph, data.test_ratings))
        if result.converged and not engine.scheduler:
            dyn_errors.extend(
                [dyn_errors[-1]] * (sweeps - len(dyn_errors))
            )
            break

    fig = Figure(
        figure_id="fig9a",
        title="Dynamic vs BSP ALS (test RMSE per sweep-equivalent)",
        x_label="sweep",
        x_values=list(range(1, sweeps + 1)),
    )
    fig.add("bsp_pregel", bsp_errors)
    fig.add("dynamic_graphlab", dyn_errors)
    fig.note(
        f"total updates: BSP={bsp_updates}, dynamic={dyn_updates} "
        f"({dyn_updates / bsp_updates:.0%}) — the paper reports ~50% on "
        "real Netflix data, whose convergence skew exceeds our "
        "synthetic generator's (see EXPERIMENTS.md)"
    )
    return fig, bsp_updates, dyn_updates


def run_fig9b():
    wl = netflix_workload(20)
    price = CC1_4XLARGE.price_per_hour
    gl_runtimes = [graphlab_runtime(m, wl) for m in MACHINES]
    gl_costs = [m * price * t / 3600.0 for m, t in zip(MACHINES, gl_runtimes)]
    h_runtimes = [hadoop_runtime(m, wl) for m in MACHINES]
    h_costs = [m * price * t / 3600.0 for m, t in zip(MACHINES, h_runtimes)]
    fig = Figure(
        figure_id="fig9b",
        title="EC2 price vs runtime (Netflix, fine-grained billing)",
        x_label="machines",
        x_values=MACHINES,
    )
    fig.add("graphlab_runtime_s", gl_runtimes)
    fig.add("graphlab_cost_usd", gl_costs)
    fig.add("hadoop_runtime_s", h_runtimes)
    fig.add("hadoop_cost_usd", h_costs)
    fig.note("paper: GraphLab about two orders of magnitude more "
             "cost-effective than Hadoop")
    return fig


def test_fig9a_dynamic_halves_updates(run_once):
    fig, bsp_updates, dyn_updates = run_once(run_fig9a)
    print("\n" + fig.render())
    fig.save()
    bsp = fig.values_of("bsp_pregel")
    dynamic = fig.values_of("dynamic_graphlab")
    # Equivalent final test error...
    assert dynamic[-1] <= bsp[-1] + 0.02
    # ...reached with meaningfully fewer updates (paper: ~half on the
    # heavily skewed real data; our synthetic skew is milder).
    assert dyn_updates <= 0.85 * bsp_updates


def test_fig9b_cost_effectiveness(run_once):
    fig = run_once(run_fig9b)
    print("\n" + fig.render())
    fig.save()
    gl_cost = fig.values_of("graphlab_cost_usd")
    gl_rt = fig.values_of("graphlab_runtime_s")
    h_cost = fig.values_of("hadoop_cost_usd")
    h_rt = fig.values_of("hadoop_runtime_s")
    # Pareto dominance: for every Hadoop configuration there is a
    # GraphLab configuration that is both faster and >=20x cheaper.
    for hc, ht in zip(h_cost, h_rt):
        assert any(
            gt < ht and gc * 20.0 <= hc for gc, gt in zip(gl_cost, gl_rt)
        )
    # Two-orders-of-magnitude claim at matched runtime: the fastest
    # Hadoop runtime is slower than the *slowest* GraphLab runtime.
    assert min(h_rt) > max(gl_rt)
    assert min(h_cost) > 20.0 * min(gl_cost)
