"""Fig. 3: distributed locking engine on the synthetic 3-D mesh.

(a) runtime vs number of machines (near-linear scaling);
(b) runtime vs pipeline length (large gain then diminishing returns).

The paper's mesh is 300^3 with 26-connectivity; ours is side-8 (512
vertices) with identical topology, and pipeline lengths are scaled by
the same vertex-count ratio (their 100..10,000 on 27M vertices maps to
single digits..hundreds here).
"""

from repro.bench import Figure
from repro.core import Consistency
from repro.datasets import mesh_3d
from repro.apps import make_lbp_update
from repro.distributed import COSEG_SIZES, LockingEngine, degree_cost, deploy

SIDE = 10
ITERATIONS = 4
MACHINES = [1, 2, 4]
PIPELINE_LENGTHS = [1, 4, 16, 256]


def _run(num_machines: int, pipeline_length: int) -> float:
    graph, psi = mesh_3d(SIDE, connectivity=26, seed=1)
    # epsilon=0: always reschedule; max_updates caps the fixed workload
    update = make_lbp_update(psi, epsilon=0.0)
    dep = deploy(
        graph,
        num_machines,
        partitioner="grid",
        atoms_per_machine=4,
        skip_ingress_io=True,
    )
    engine = LockingEngine(
        dep.cluster,
        graph,
        update,
        dep.stores,
        dep.owner,
        degree_cost(300000.0),
        COSEG_SIZES,
        consistency=Consistency.EDGE,
        pipeline_length=pipeline_length,
        max_updates=ITERATIONS * graph.num_vertices,
    )
    result = engine.run(initial=graph.vertices())
    assert result.num_updates >= ITERATIONS * graph.num_vertices - 8
    return result.runtime


def run_experiment():
    fig_a = Figure(
        figure_id="fig3a",
        title="Locking engine runtime vs machines (pipeline=16)",
        x_label="machines",
        x_values=MACHINES,
    )
    fig_a.add("runtime_s", [_run(m, 16) for m in MACHINES])
    fig_a.note(
        f"side-{SIDE} 26-connected mesh, {ITERATIONS} LBP iterations "
        "(paper: 300^3 mesh, 10 iterations)"
    )

    fig_b = Figure(
        figure_id="fig3b",
        title="Locking engine runtime vs pipeline length (4 machines)",
        x_label="pipeline_length",
        x_values=PIPELINE_LENGTHS,
    )
    fig_b.add("runtime_s", [_run(4, p) for p in PIPELINE_LENGTHS])
    fig_b.note(
        "pipeline lengths scaled to the reduced mesh (paper sweeps "
        "100..10,000 at 27M vertices)"
    )
    return fig_a, fig_b


def test_fig3_pipelined_locking(run_once):
    fig_a, fig_b = run_once(run_experiment)
    print("\n" + fig_a.render())
    print("\n" + fig_b.render())
    fig_a.save()
    fig_b.save()
    runtimes_a = fig_a.values_of("runtime_s")
    # (a) scaling: more machines, strictly faster, with at least
    # 1.8x total gain from 1 -> 4 machines (the reduced mesh has a far
    # higher boundary fraction than the paper's 300^3 mesh).
    assert runtimes_a[0] > runtimes_a[1] > runtimes_a[2]
    assert runtimes_a[0] / runtimes_a[2] > 1.8
    # (b) longer pipelines help a lot initially...
    runtimes_b = fig_b.values_of("runtime_s")
    assert runtimes_b[0] > 2.0 * runtimes_b[1]
    # ...with diminishing returns at the top end.
    gain_mid = runtimes_b[1] / runtimes_b[2]
    gain_tail = runtimes_b[2] / runtimes_b[3]
    assert gain_tail < gain_mid
    assert gain_tail < 1.5
