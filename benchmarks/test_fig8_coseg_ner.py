"""Fig. 8: CoSeg weak scaling, pipeline-vs-partition, NER systems, and
snapshot overhead.

(a) CoSeg weak scaling on the executing locking engine: dataset grows
    proportionally with machines; runtime should stay near-constant.
(b) pipeline length x partition quality: a longer pipeline compensates
    for a worst-case (striped) partition.
(c) NER GraphLab/Hadoop/MPI at paper scale (cost models).
(d) snapshot overhead per application at 64 machines (cost model:
    checkpoint bytes vs an iteration's work; plus an executing check).
"""

from repro.apps import make_lbp_update, prepare_coseg
from repro.baselines import (
    graphlab_runtime,
    hadoop_runtime,
    mpi_runtime,
    ner_workload,
    netflix_workload,
    coseg_workload,
)
from repro.bench import Figure
from repro.core import Consistency
from repro.datasets import synthetic_video
from repro.distributed import (
    COSEG_SIZES,
    LockingEngine,
    deploy,
    degree_cost,
    frame_assignment,
    stripe_assignment,
)
from repro.baselines.analytic import GRAPHLAB_EFFECTIVE_BW, HADOOP_DISK_BPS

MACHINES = [4, 8, 16, 32, 64]


def _coseg_engine(video, num_machines, assignment, pipeline_length,
                  max_sweeps=3):
    setup = prepare_coseg(video, seed=3)
    dep = deploy(
        video.graph,
        num_machines,
        assignment=assignment,
        sizes=COSEG_SIZES,
        skip_ingress_io=True,
        latency=1e-3,  # realistic EC2 RTT; exposes remote lock chains
    )
    engine = LockingEngine(
        dep.cluster,
        video.graph,
        setup["update_fn"],
        dep.stores,
        dep.owner,
        degree_cost(600000.0),
        COSEG_SIZES,
        consistency=Consistency.EDGE,
        scheduler="priority",
        pipeline_length=pipeline_length,
        syncs=[setup["sync"]],
        initial_globals=setup["initial_globals"],
        max_updates=max_sweeps * video.graph.num_vertices,
    )
    return engine


def run_fig8a():
    """Weak scaling: frames grow with machines."""
    runtimes = []
    machine_counts = [1, 2, 4]
    for m in machine_counts:
        video = synthetic_video(
            frames=8 * m, rows=6, cols=8, num_labels=3, seed=6
        )
        k = max(m * 2, 2)
        assignment = frame_assignment(
            video.graph, k, video.frame_fn, video.frames
        )
        engine = _coseg_engine(video, m, assignment, pipeline_length=64)
        result = engine.run(initial=video.graph.vertices())
        runtimes.append(result.runtime)
    fig = Figure(
        figure_id="fig8a",
        title="CoSeg weak scaling (runtime, data grows with machines)",
        x_label="machines",
        x_values=machine_counts,
    )
    fig.add("runtime_s", runtimes)
    fig.note("paper: 11% runtime growth from 16 to 64 machines")
    return fig


def run_fig8b():
    """Pipeline length vs partition quality on a fixed 4-machine job."""
    # The paper evaluates this on a small 32-frame problem, 4 nodes.
    video = synthetic_video(frames=32, rows=6, cols=8, num_labels=3, seed=8)
    k = 8
    optimal = frame_assignment(video.graph, k, video.frame_fn, video.frames)
    # True worst case: round-robin striping of individual vertices,
    # so nearly every scope crosses machines.
    worst = stripe_assignment(video.graph, k)
    lengths = [1, 8, 64]
    rows = {}
    for label, assignment in (("optimal", optimal), ("worst_case", worst)):
        rows[label] = []
        for length in lengths:
            engine = _coseg_engine(video, 4, assignment, length,
                                   max_sweeps=2)
            result = engine.run(initial=video.graph.vertices())
            rows[label].append(result.runtime)
    fig = Figure(
        figure_id="fig8b",
        title="Pipelined locking vs partition quality (4 machines)",
        x_label="pipeline_length",
        x_values=lengths,
    )
    fig.add("optimal_partition", rows["optimal"])
    fig.add("worst_case_partition", rows["worst_case"])
    fig.note("paper: longer pipelines compensate for poor partitioning")
    return fig


def run_fig8c():
    wl = ner_workload()
    fig = Figure(
        figure_id="fig8c",
        title="NER runtime: GraphLab vs Hadoop vs MPI (seconds)",
        x_label="machines",
        x_values=MACHINES,
    )
    fig.add("hadoop", [hadoop_runtime(m, wl) for m in MACHINES])
    fig.add("graphlab", [graphlab_runtime(m, wl) for m in MACHINES])
    fig.add("mpi", [mpi_runtime(m, wl) for m in MACHINES])
    fig.note("paper: ~80x over Hadoop at few machines, ~30x at many; "
             "MPI outperforms GraphLab (communication-bound)")
    return fig


def run_fig8d():
    """Snapshot overhead % when checkpointing every |V| updates at 64
    machines, from the cost model: checkpoint write time vs one
    sweep's compute/communication time."""
    results = []
    labels = []
    for name, wl in (
        ("netflix_d20", netflix_workload(20)),
        ("coseg", coseg_workload()),
        ("ner", ner_workload()),
    ):
        sweep_seconds = graphlab_runtime(
            64, wl, include_load=False
        ) / wl.iterations
        checkpoint_bytes = (
            wl.num_vertices * wl.vertex_bytes
            + 2 * wl.num_edges * wl.edge_bytes
        ) / 64.0
        checkpoint_seconds = checkpoint_bytes / HADOOP_DISK_BPS
        overhead = 100.0 * checkpoint_seconds / sweep_seconds
        labels.append(name)
        results.append(overhead)
    fig = Figure(
        figure_id="fig8d",
        title="Snapshot overhead (% of one |V|-update epoch), 64 machines",
        x_label="application",
        x_values=labels,
    )
    fig.add("overhead_pct", results)
    fig.note("paper: snapshot every |V| updates costs a modest fraction "
             "of the epoch (largest for NER's 816-byte vertices)")
    return fig


def test_fig8a_weak_scaling(run_once):
    fig = run_once(run_fig8a)
    print("\n" + fig.render())
    fig.save()
    runtimes = fig.values_of("runtime_s")
    # Ideal weak scaling is flat; allow 2x at quadruple data (the
    # paper saw 11% from 16->64 with far larger per-machine work; the
    # single-machine baseline here pays zero communication).
    assert runtimes[-1] <= 2.0 * runtimes[0]
    assert runtimes[-1] <= 1.6 * runtimes[1]


def test_fig8b_pipeline_compensates_partitioning(run_once):
    fig = run_once(run_fig8b)
    print("\n" + fig.render())
    fig.save()
    optimal = fig.values_of("optimal_partition")
    worst = fig.values_of("worst_case_partition")
    # Worst-case partition is crippling at pipeline length 1...
    assert worst[0] > 1.5 * optimal[0]
    # ...pipelining rescues it...
    assert worst[-1] < 0.66 * worst[0]
    # ...to within striking distance of the optimal partition.
    assert worst[-1] < 2.0 * optimal[-1]
    # And the optimal partition is much less sensitive to the pipeline.
    optimal_gain = optimal[0] / optimal[-1]
    worst_gain = worst[0] / worst[-1]
    assert worst_gain > optimal_gain


def test_fig8c_ner_systems(run_once):
    fig = run_once(run_fig8c)
    print("\n" + fig.render())
    fig.save()
    hadoop = fig.values_of("hadoop")
    graphlab = fig.values_of("graphlab")
    mpi = fig.values_of("mpi")
    ratios = [h / g for h, g in zip(hadoop, graphlab)]
    # Paper: ~80x at few machines narrowing to ~30x at many.
    assert ratios[0] > 50.0
    assert ratios[-1] < ratios[0]
    assert 10.0 <= ratios[-1] <= 50.0
    # MPI outperforms GraphLab on this communication-bound task.
    for g, p in zip(graphlab, mpi):
        assert g / p > 1.2


def test_fig8d_snapshot_overhead(run_once):
    fig = run_once(run_fig8d)
    print("\n" + fig.render())
    fig.save()
    overheads = dict(zip(fig.x_values, fig.values_of("overhead_pct")))
    # All modest (under ~50%, per Fig. 8d's axis) and strictly positive.
    for name, pct in overheads.items():
        assert 0.0 < pct < 60.0, (name, pct)
