"""Table 1: comparison chart of large-scale computation frameworks."""

from repro.bench import Figure, capability_table, graphlab_claims


def build_table1():
    rows = capability_table()
    fig = Figure(
        figure_id="table1",
        title="Framework capability matrix (Table 1)",
        x_label="framework",
        x_values=[r.name for r in rows],
    )
    fig.add("model", [r.computation_model for r in rows])
    fig.add("sparse", [r.sparse_dependencies for r in rows])
    fig.add("async", [r.async_computation for r in rows])
    fig.add("iterative", [r.iterative for r in rows])
    fig.add("priority", [r.prioritized_ordering for r in rows])
    fig.add("consistency", [r.enforce_consistency for r in rows])
    fig.add("distributed", [r.distributed for r in rows])
    for prop, module in graphlab_claims().items():
        fig.note(f"GraphLab {prop}: {module}")
    return fig, rows


def test_table1_capability_matrix(run_once):
    fig, rows = run_once(build_table1)
    print("\n" + fig.render())
    fig.save()
    by_name = {r.name: r for r in rows}
    graphlab = by_name["GraphLab"]
    # GraphLab is the only row with every property (the paper's point).
    assert all(
        getattr(graphlab, prop)
        for prop in (
            "sparse_dependencies",
            "async_computation",
            "iterative",
            "prioritized_ordering",
            "enforce_consistency",
            "distributed",
        )
    )
    for row in rows:
        if row.name != "GraphLab":
            assert not all(
                (
                    row.sparse_dependencies,
                    row.async_computation,
                    row.iterative,
                    row.prioritized_ordering,
                    row.enforce_consistency,
                    row.distributed,
                )
            )
    # Every implemented claim is importable.
    import importlib

    for module in ("repro.baselines.mpi", "repro.baselines.mapreduce",
                   "repro.baselines.pregel", "repro.distributed"):
        importlib.import_module(module)
