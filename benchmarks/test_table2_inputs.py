"""Table 2: experiment input sizes.

Prints the paper-scale specification next to the reduced-scale
generated datasets, and checks the data-size formulas (vertex bytes
8d+13 for Netflix, 392/80 for CoSeg, 816/4 for NER) and graph shapes
(bipartite / 3-D grid).
"""

from repro.bench import Figure
from repro.core import bipartite_coloring
from repro.baselines import coseg_workload, ner_workload, netflix_workload
from repro.datasets import synthetic_ner, synthetic_netflix, synthetic_video
from repro.distributed import COSEG_SIZES, NER_SIZES, netflix_sizes


def run_experiment():
    netflix = synthetic_netflix(num_users=300, num_movies=100, seed=0)
    video = synthetic_video(frames=6, rows=10, cols=16, seed=0)
    ner = synthetic_ner(seed=0)
    paper = {
        "netflix": netflix_workload(20),
        "coseg": coseg_workload(),
        "ner": ner_workload(),
    }
    fig = Figure(
        figure_id="table2",
        title="Experiment input sizes (paper scale vs generated)",
        x_label="experiment",
        x_values=["netflix", "coseg", "ner"],
    )
    fig.add(
        "paper_verts",
        [paper[k].num_vertices for k in ("netflix", "coseg", "ner")],
    )
    fig.add(
        "paper_edges",
        [paper[k].num_edges for k in ("netflix", "coseg", "ner")],
    )
    fig.add(
        "gen_verts",
        [
            netflix.graph.num_vertices,
            video.graph.num_vertices,
            ner.graph.num_vertices,
        ],
    )
    fig.add(
        "gen_edges",
        [
            netflix.graph.num_edges,
            video.graph.num_edges,
            ner.graph.num_edges,
        ],
    )
    fig.add(
        "vertex_bytes",
        [paper[k].vertex_bytes for k in ("netflix", "coseg", "ner")],
    )
    fig.add(
        "edge_bytes",
        [paper[k].edge_bytes for k in ("netflix", "coseg", "ner")],
    )
    fig.add("shape", ["bipartite", "3D grid", "bipartite"])
    fig.add("partition", ["random", "frames", "random"])
    fig.add("engine", ["chromatic", "locking", "chromatic"])
    return fig, netflix, video, ner


def test_table2_input_sizes(run_once):
    fig, netflix, video, ner = run_once(run_experiment)
    print("\n" + fig.render())
    fig.save()
    # Byte formulas from Table 2.
    for d in (5, 20, 50, 100):
        sizes = netflix_sizes(d)
        assert sizes.vbytes(("u", 0)) == 8 * d + 13
        assert sizes.ebytes(("u", 0), ("m", 0)) == 16
    assert COSEG_SIZES.vbytes((0, 0, 0)) == 392
    assert COSEG_SIZES.ebytes((0, 0, 0), (0, 0, 1)) == 80
    assert NER_SIZES.vbytes(("np", "x")) == 816
    assert NER_SIZES.ebytes(("np", "x"), ("ctx", 0)) == 4
    # Shapes: the bipartite graphs really are two-colorable.
    bipartite_coloring(netflix.graph, side_fn=netflix.side_fn)
    bipartite_coloring(ner.graph, side_fn=ner.side_fn)
    # The video graph is a 3-D grid: max degree 6 (4 spatial + 2
    # temporal neighbors).
    assert max(
        video.graph.degree(v) for v in video.graph.vertices()
    ) <= 6
    # Paper-scale update complexity ordering (Table 2): ALS most
    # expensive per update.
    assert netflix.graph.num_edges > 0 and ner.graph.num_edges > 0
