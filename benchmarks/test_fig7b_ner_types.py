"""Fig. 7(b): NER top words per type.

Runs CoEM to convergence on the synthetic corpus and prints the
strongest noun-phrases per type — the analog of the paper's
food/religion table. Checks that the recovered vocabulary matches the
generative types.
"""

from repro.apps import (
    labeling_accuracy,
    make_coem_update,
    phrase_labels,
    top_words_per_type,
)
from repro.bench import Figure
from repro.core import SequentialEngine
from repro.datasets import TYPE_VOCABULARY, synthetic_ner

TOP_K = 5


def run_experiment():
    data = synthetic_ner(
        phrases_per_type=30, num_contexts=120, edges_per_phrase=12, seed=4
    )
    update = make_coem_update(data.seeds)
    engine = SequentialEngine(
        data.graph, update, scheduler="fifo", max_updates=200000
    )
    result = engine.run(initial=data.graph.vertices())
    top = top_words_per_type(data.graph, data.types, k=TOP_K)
    labels = phrase_labels(data.graph)
    accuracy = labeling_accuracy(labels, data.truth)
    fig = Figure(
        figure_id="fig7b",
        title="NER: top noun-phrases per type (CoEM)",
        x_label="rank",
        x_values=list(range(1, TOP_K + 1)),
    )
    for type_name, words in top.items():
        fig.add(type_name, [w for (w, _score) in words])
    fig.note(f"labeling accuracy over all noun-phrases: {accuracy:.1%}")
    return fig, top, accuracy, result


def test_fig7b_top_words(run_once):
    fig, top, accuracy, result = run_once(run_experiment)
    print("\n" + fig.render())
    fig.save()
    assert result.converged
    assert accuracy > 0.9
    # The top words per type really belong to that type's vocabulary
    # (allow suffixed variants like "onion_2").
    for type_name, words in top.items():
        vocab = set(TYPE_VOCABULARY[type_name])
        hits = sum(
            1 for (word, _s) in words if word.split("_")[0] in vocab
        )
        assert hits >= TOP_K - 1, (type_name, words)
