"""Fig. 4: synchronous vs asynchronous (Chandy-Lamport) snapshots.

(a) updates-completed vs time with one snapshot mid-run: the sync
snapshot "flatlines" progress while the async snapshot only slows it;
(b) the same with a straggler machine stalled during the snapshot: the
sync snapshot absorbs the full stall, the async snapshot a fraction.
"""

from repro.apps import make_lbp_update
from repro.bench import Figure
from repro.core import Consistency
from repro.datasets import mesh_3d
from repro.distributed import COSEG_SIZES, LockingEngine, degree_cost, deploy
from repro.distributed import locking

SIDE = 6
MACHINES = 4
ITERATIONS = 6


def _run(snapshot_mode=None, stall_seconds=0.0, stall_start=0.01):
    graph, psi = mesh_3d(SIDE, connectivity=26, seed=2)
    update = make_lbp_update(psi, epsilon=0.0)
    dep = deploy(
        graph, MACHINES, partitioner="grid", atoms_per_machine=4,
        skip_ingress_io=True,
    )
    # Checkpoint serialization is a visible fraction of the run, as at
    # paper scale (GBs of state vs ~100 MB/s of marshaling throughput).
    locking.CHECKPOINT_SERIALIZE_CYCLES_PER_BYTE = 5e4
    budget = ITERATIONS * graph.num_vertices
    plan = [(budget // 2, snapshot_mode)] if snapshot_mode else []
    engine = LockingEngine(
        dep.cluster,
        graph,
        update,
        dep.stores,
        dep.owner,
        degree_cost(400000.0),
        COSEG_SIZES,
        consistency=Consistency.EDGE,
        pipeline_length=16,
        max_updates=budget,
        dfs=dep.dfs,
        snapshot_plan=plan,
        progress_interval=0.002,
    )
    if stall_seconds > 0.0:
        # Stall one machine shortly after the snapshot begins.
        dep.cluster.machine(MACHINES - 1).add_slowdown(
            stall_start, stall_start + stall_seconds, 0.0
        )
    result = engine.run(initial=graph.vertices())
    result.extra["snapshot_progress"] = getattr(
        engine, "snapshot_progress", []
    )
    return result


def run_experiment():
    baseline = _run(None)
    async_run = _run("async")
    sync_run = _run("sync")
    stall = 0.15 * baseline.runtime
    # The fault lands just after the snapshot begins (as in the paper:
    # "halting one of the processes for 15 seconds after snapshot
    # begins").
    stall_start = sync_run.snapshots[0].start + 0.005
    async_stall = _run("async", stall_seconds=stall, stall_start=stall_start)
    sync_stall = _run("sync", stall_seconds=stall, stall_start=stall_start)

    fig = Figure(
        figure_id="fig4",
        title="Snapshot overhead: runtime to equal update count",
        x_label="scenario",
        x_values=[
            "baseline",
            "async_snapshot",
            "sync_snapshot",
            "async_snapshot+stall",
            "sync_snapshot+stall",
        ],
    )
    fig.add(
        "runtime_s",
        [
            baseline.runtime,
            async_run.runtime,
            sync_run.runtime,
            async_stall.runtime,
            sync_stall.runtime,
        ],
    )
    fig.add(
        "snapshots",
        [
            len(baseline.snapshots),
            len(async_run.snapshots),
            len(sync_run.snapshots),
            len(async_stall.snapshots),
            len(sync_stall.snapshots),
        ],
    )
    fig.note(f"injected stall: {stall:.4f}s (15% of baseline runtime)")
    return fig, baseline, async_run, sync_run, async_stall, sync_stall, stall


def _longest_flatline(result, horizon=None):
    """Longest period without *any* progress: neither user updates nor
    snapshot updates (both are update functions — Fig. 4 plots vertices
    updated, and Alg. 5 runs as an update function). ``horizon`` clips
    trailing journal I/O after the computation finished."""
    events = set()
    last_updates = None
    for (t, updates) in result.progress:
        if horizon is not None and t > horizon:
            continue
        if updates != last_updates:
            events.add(t)
            last_updates = updates
    for (t, _marked) in result.extra.get("snapshot_progress", []):
        if horizon is None or t <= horizon:
            events.add(t)
    ordered = sorted(events)
    if len(ordered) < 2:
        return 0.0
    return max(b - a for a, b in zip(ordered, ordered[1:]))


def _user_done_time(result, budget):
    """Time at which the user-update budget completed (Fig. 4's x-axis
    measures update progress, not trailing snapshot I/O)."""
    for (t, updates) in result.progress:
        if updates >= budget:
            return t
    return result.progress[-1][0]


def test_fig4_async_beats_sync_snapshots(run_once):
    (fig, baseline, async_run, sync_run, async_stall, sync_stall, stall) = (
        run_once(run_experiment)
    )
    print("\n" + fig.render())
    fig.save()
    # Snapshots actually happened and completed.
    assert len(async_run.snapshots) == 1
    assert async_run.snapshots[0].mode == "async"
    assert len(sync_run.snapshots) == 1
    assert sync_run.snapshots[0].mode == "sync"
    budget = ITERATIONS * (SIDE ** 3)
    base_done = _user_done_time(baseline, budget)
    sync_done = _user_done_time(sync_run, budget)
    async_done = _user_done_time(async_run, budget)
    flat_sync = _longest_flatline(sync_run, horizon=sync_done)
    flat_async = _longest_flatline(async_run, horizon=async_done)
    flat_sync_stall = _longest_flatline(
        sync_stall, horizon=_user_done_time(sync_stall, budget)
    )
    flat_async_stall = _longest_flatline(
        async_stall, horizon=_user_done_time(async_stall, budget)
    )
    print(
        f"flatlines: sync={flat_sync:.4f} async={flat_async:.4f} "
        f"sync+stall={flat_sync_stall:.4f} "
        f"async+stall={flat_async_stall:.4f} stall={stall:.4f}"
    )
    # (a) the sync snapshot costs user-progress time over the baseline
    # and exhibits the characteristic flatline: a zero-progress plateau
    # far longer than anything in the async run, which keeps computing
    # throughout its snapshot (the paper's Fig. 4a).
    assert sync_done > base_done
    assert flat_sync > 2.0 * flat_async
    # (b) a straggler stalled during the snapshot delays the
    # synchronous run's completion by (most of) the stall — the barrier
    # amplifies the fault — and costs the async run strictly less
    # (paper: 16s vs 3s penalty for a 15s fault).
    sync_penalty = _user_done_time(sync_stall, budget) - sync_done
    async_penalty = _user_done_time(async_stall, budget) - async_done
    print(f"penalties: sync={sync_penalty:.4f} async={async_penalty:.4f}")
    # Directional claim at this reduced scale (see EXPERIMENTS.md): the
    # stalled sync run's worst no-progress window stays the longest.
    assert flat_async_stall < flat_sync_stall
    assert flat_sync_stall > 0.5 * stall
