"""Core hot-path micro-benchmark: updates/sec through ``SequentialEngine``.

Unlike the ``benchmarks/test_fig*`` modules (which reproduce the paper's
*figures* on the simulated cluster), this module measures the raw
throughput of the in-process execution hot loop — pop a vertex, bind a
scope, run the update — on two representative workloads:

* **PageRank** on a seeded random directed graph (scalar vertex data,
  the paper's running example, Alg. 1);
* **Loopy BP** on a 2-D grid MRF (numpy-vector vertex/edge data, the
  workload of Secs. 4.2.2/5.2).

Results are written to ``BENCH_core.json`` at the repo root together
with the pre-refactor baseline (measured with this same harness on the
seed tree, commit 362b979), so the perf trajectory of later PRs is
anchored to a fixed reference.

Run it as::

    PYTHONPATH=src python -m benchmarks.perf.bench_core
    make bench

The script refuses to overwrite an existing ``BENCH_core.json`` from a
dirty working tree (pass ``--force`` to override): recorded numbers must
be reproducible from a committed state.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict

from repro.apps.lbp import init_lbp_data, make_lbp_update, potts_potential
from repro.apps.pagerank import make_pagerank_update
from repro.core.engine import SequentialEngine
from repro.core.graph import DataGraph

REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_core.json"

#: Throughput of this same harness on the seed tree (commit 362b979,
#: pre-CSR dict-of-lists storage, per-update Scope allocation), measured
#: on the reference container (Python 3.11.7, best of 3). Kept in-file
#: so every future ``BENCH_core.json`` carries the anchor it is
#: compared against.
PRE_REFACTOR_BASELINE: Dict[str, Dict[str, float]] = {
    "pagerank": {
        "num_updates": 3645,
        "seconds": 0.068,
        "updates_per_sec": 53576.3,
    },
    "lbp": {
        "num_updates": 8000,
        "seconds": 0.489,
        "updates_per_sec": 16359.4,
    },
}


# ----------------------------------------------------------------------
# Workload builders (deterministic; structure identical across runs).
# ----------------------------------------------------------------------
def build_pagerank_workload(
    n: int = 2000, out_degree: int = 8, seed: int = 7
):
    """Seeded random directed graph with 1/out-degree edge weights."""
    rng = random.Random(seed)
    edges = set()
    for i in range(n):
        for _ in range(out_degree):
            j = rng.randrange(n)
            if j != i:
                edges.add((i, j))
    out_count: Dict[int, int] = {}
    for (i, _j) in edges:
        out_count[i] = out_count.get(i, 0) + 1
    graph = DataGraph()
    for i in range(n):
        graph.add_vertex(i, data=1.0 / n)
    for (i, j) in sorted(edges):
        graph.add_edge(i, j, data=1.0 / out_count[i])
    graph.finalize()

    def run() -> int:
        for v in range(n):
            graph.set_vertex_data(v, 1.0 / n)
        engine = SequentialEngine(
            graph,
            make_pagerank_update(epsilon=1e-4),
            scheduler="fifo",
            max_updates=60000,
        )
        return engine.run(range(n)).num_updates

    return run


def build_lbp_workload(rows: int = 20, cols: int = 20, labels: int = 5, seed: int = 3):
    """2-D grid MRF with seeded random unaries (Potts potential)."""
    rng = random.Random(seed)
    graph = DataGraph()
    for r in range(rows):
        for c in range(cols):
            graph.add_vertex((r, c))
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                graph.add_edge((r, c), (r, c + 1))
    graph.finalize()
    unaries = {
        v: [rng.random() + 0.1 for _ in range(labels)] for v in graph.vertices()
    }
    psi = potts_potential(labels, smoothing=1.5)

    def run() -> int:
        init_lbp_data(graph, unaries)
        engine = SequentialEngine(
            graph,
            make_lbp_update(psi, epsilon=1e-3),
            scheduler="fifo",
            max_updates=8000,
        )
        return engine.run(list(graph.vertices())).num_updates

    return run


WORKLOADS: Dict[str, Callable[[], Callable[[], int]]] = {
    "pagerank": build_pagerank_workload,
    "lbp": build_lbp_workload,
}


# ----------------------------------------------------------------------
# Measurement.
# ----------------------------------------------------------------------
def measure(run: Callable[[], int], repeats: int = 3) -> Dict[str, float]:
    """Best-of-``repeats`` wall-clock throughput for one workload."""
    best: Dict[str, float] = {}
    for _ in range(repeats):
        t0 = time.perf_counter()
        num_updates = run()
        elapsed = time.perf_counter() - t0
        ups = num_updates / elapsed
        if not best or ups > best["updates_per_sec"]:
            best = {
                "num_updates": num_updates,
                "seconds": round(elapsed, 4),
                "updates_per_sec": round(ups, 1),
            }
    return best


def run_benchmarks(repeats: int = 3) -> Dict[str, Dict[str, float]]:
    """Measure every workload; returns ``{name: metrics}``."""
    results = {}
    for name, builder in WORKLOADS.items():
        results[name] = measure(builder(), repeats=repeats)
    return results


def _tree_is_dirty() -> bool:
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return False  # not a git checkout: nothing to protect
    return bool(out.strip())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N repetitions"
    )
    parser.add_argument(
        "--force", action="store_true",
        help="overwrite the output even from a dirty working tree",
    )
    parser.add_argument(
        "--print-only", action="store_true",
        help="measure and print without writing the output file",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    if (
        not args.print_only
        and not args.force
        and args.output.exists()
        and _tree_is_dirty()
    ):
        print(
            f"refusing to overwrite {args.output} from a dirty working "
            "tree; commit first or pass --force",
            file=sys.stderr,
        )
        return 1

    results = run_benchmarks(repeats=args.repeats)
    payload = {
        "harness": "benchmarks.perf.bench_core",
        "python": platform.python_version(),
        "baseline": PRE_REFACTOR_BASELINE,
        "current": results,
        "speedup": {
            name: round(
                results[name]["updates_per_sec"]
                / PRE_REFACTOR_BASELINE[name]["updates_per_sec"],
                2,
            )
            for name in results
            if PRE_REFACTOR_BASELINE.get(name, {}).get("updates_per_sec")
        },
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.print_only:
        print(text, end="")
        return 0
    args.output.write_text(text)
    print(f"wrote {args.output}")
    for name, metrics in results.items():
        speedup = payload["speedup"].get(name)
        note = f" ({speedup}x over baseline)" if speedup else ""
        print(f"  {name}: {metrics['updates_per_sec']:.0f} updates/s{note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
