"""Core hot-path micro-benchmark: updates/sec through the real engines.

Unlike the ``benchmarks/test_fig*`` modules (which reproduce the paper's
*figures* on the simulated cluster), this module measures raw wall-clock
throughput on three fronts:

* **PageRank** through ``SequentialEngine`` on a seeded random directed
  graph (scalar vertex data, the paper's running example, Alg. 1);
* **Loopy BP** through ``SequentialEngine`` on a 2-D grid MRF
  (numpy-vector vertex/edge data, the workload of Secs. 4.2.2/5.2);
* **Real-runtime PageRank** (PR 2): the Fig. 1a workload (1200-page
  power-law web graph) as round-robin sweeps, on ``ThreadedEngine``
  (4 GIL-bound threads — the old parallel ceiling) versus
  ``RuntimeChromaticEngine`` over ``MpTransport`` at 1/2/4 worker OS
  processes, with the results checked bit-identical against the
  ``ColorSweepScheduler``-driven sequential oracle. Since PR 3 the
  graph carries typed float64 columns, so the workers execute
  color-steps through the PageRank batch kernel and ghost rounds ship
  array buffers;
* **Batch kernels** (PR 3): whole color-sweeps as numpy passes
  (``repro.core.kernels``) versus the scalar interpreter on identical
  typed-column workloads — PageRank on a seeded random digraph and
  loopy BP on a grid MRF — recorded with ``speedup_vs_scalar`` and a
  bit-identity flag (the kernel contract, not an approximation);
* **Real-runtime LBP** (PR 3): the typed-column grid MRF on worker OS
  processes at 1/2/4 workers, so the vector-message wire format's win
  is measured, not asserted. Since PR 4 it mirrors the PageRank
  section's shape (``ThreadedEngine`` baseline + ``speedup_vs_threaded``
  fields);
* **Runtime locking engine** (PR 5): the first asynchronous/dynamic
  workloads on real processes — epsilon-gated dynamic PageRank
  (``runtime_locking_pagerank``) and the paper's Fig. 1d dynamic ALS
  (``runtime_als``) through ``RuntimeLockingEngine`` at mp 1/2/4 vs
  ``ThreadedEngine``, with a **pipeline window ablation** (window=1 vs
  the default) recording ``pipelining_speedup_vs_window_1`` — the
  Figs. 3b/8b effect measured on real lock latency. Correctness rides
  along as fixed-point checks (PageRank L1 vs dense truth, ALS train
  RMSE descent), since sequential consistency promises the fixed
  point, not a bit pattern;
* **Fault tolerance** (PR 6, ``runtime_fault``): the Fig. 1a workload
  bare vs with periodic synchronous snapshots
  (``snapshot_overhead_pct``), plus one run with an injected worker
  kill recording the respawn + rollback cost (``recovery_seconds``)
  and that the recovered run finishes bit-identical to the unkilled
  one. PR 8 adds two robustness latencies to the same section: how
  fast the heartbeat watchdog declares a SIGSTOPped worker dead
  (``hang_detection_seconds``) and how long a cold restart from
  verified on-disk snapshots takes (``resume_from_disk_seconds``),
  both with bit-identity checks;
* **Socket wire** (PR 9, ``runtime_pagerank_tcp``): the Fig. 1a
  workload over localhost TCP (``TcpTransport``) at 1/2/4 workers next
  to fresh ``MpTransport`` rows measured in the same process, with the
  per-row ``tcp_vs_mp`` throughput ratio, the connection-supervision
  counters (``reconnects`` / ``retries`` — zero on a healthy link), and
  a ``bit_identical_to_mp`` flag covering every TCP row;
* **Serving** (PR 10, ``serve``): a :class:`repro.serve.GraphService`
  — the resident graph parked at the barrier — under a seeded 80/20
  mixed read/write stream through both front ends (in-process and
  socket), recording client-observed ``queries_per_sec`` plus
  admission-to-reply latency percentiles (``read_p50_ms`` …
  ``write_p99_ms``) and the count of backpressure rejections.

Sections can be re-measured independently with ``--sections`` (comma-
separated top-level keys), which merges the fresh numbers into the
existing ``BENCH_core.json`` instead of re-running the whole harness.

Since PR 4 both runtime sections also record the communication
counters the shared-memory data plane and color-merged rounds exist to
shrink: ``rounds_per_sweep`` (transport barriers actually paid, next to
the ``_unmerged`` count a barrier-per-color schedule would have paid),
``bytes_on_pipe`` (pickled bytes crossing coordinator pipes — ghost
data moves through shared memory instead), and the active
``data_plane`` flavor.

Results are written to ``BENCH_core.json`` at the repo root together
with the pre-refactor baseline (measured with this same harness on the
seed tree, commit 362b979), so the perf trajectory of later PRs is
anchored to a fixed reference.

Run it as::

    PYTHONPATH=src python -m benchmarks.perf.bench_core
    make bench

The script refuses to overwrite an existing ``BENCH_core.json`` from a
dirty working tree (pass ``--force`` to override): recorded numbers must
be reproducible from a committed state.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict

from repro.apps.lbp import (
    init_lbp_data,
    make_lbp_update,
    make_lbp_update_typed,
    potts_potential,
)
from repro.apps.als import initialize_factors, make_als_update, training_rmse
from repro.apps.pagerank import (
    exact_pagerank,
    l1_error,
    make_pagerank_update,
)
from repro.core.coloring import greedy_coloring
from repro.core.engine import SequentialEngine, ThreadedEngine
from repro.core.graph import DataGraph
from repro.datasets.mesh import grid_2d_typed
from repro.datasets.netflix import synthetic_netflix
from repro.datasets.webgraph import power_law_web_graph
from repro.obs import phase_share_fractions
from repro.runtime import (
    ColorSweepScheduler,
    MpTransport,
    RuntimeChromaticEngine,
    RuntimeLockingEngine,
    UpdateProgram,
    WorkerFailure,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_core.json"

#: Throughput of this same harness on the seed tree (commit 362b979,
#: pre-CSR dict-of-lists storage, per-update Scope allocation), measured
#: on the reference container (Python 3.11.7, best of 3). Kept in-file
#: so every future ``BENCH_core.json`` carries the anchor it is
#: compared against.
PRE_REFACTOR_BASELINE: Dict[str, Dict[str, float]] = {
    "pagerank": {
        "num_updates": 3645,
        "seconds": 0.068,
        "updates_per_sec": 53576.3,
    },
    "lbp": {
        "num_updates": 8000,
        "seconds": 0.489,
        "updates_per_sec": 16359.4,
    },
}


# ----------------------------------------------------------------------
# Workload builders (deterministic; structure identical across runs).
# ----------------------------------------------------------------------
def _random_digraph(
    n: int, out_degree: int, seed: int, typed: bool = False
) -> DataGraph:
    """Seeded random directed graph with 1/out-degree edge weights.

    One recipe for both the scalar PageRank workload and the
    batch-kernel section, so their speedup comparison really measures
    the same graph family.
    """
    rng = random.Random(seed)
    edges = set()
    for i in range(n):
        for _ in range(out_degree):
            j = rng.randrange(n)
            if j != i:
                edges.add((i, j))
    out_count: Dict[int, int] = {}
    for (i, _j) in edges:
        out_count[i] = out_count.get(i, 0) + 1
    graph = DataGraph()
    for i in range(n):
        graph.add_vertex(i, data=1.0 / n)
    for (i, j) in sorted(edges):
        graph.add_edge(i, j, data=1.0 / out_count[i])
    if typed:
        return graph.finalize(vertex_dtype=float, edge_dtype=float)
    return graph.finalize()


def build_pagerank_workload(
    n: int = 2000, out_degree: int = 8, seed: int = 7
):
    """Adaptive PageRank through the scalar fifo-driven engine."""
    graph = _random_digraph(n, out_degree, seed)

    def run() -> int:
        for v in range(n):
            graph.set_vertex_data(v, 1.0 / n)
        engine = SequentialEngine(
            graph,
            make_pagerank_update(epsilon=1e-4),
            scheduler="fifo",
            max_updates=60000,
        )
        return engine.run(range(n)).num_updates

    return run


def build_lbp_workload(rows: int = 20, cols: int = 20, labels: int = 5, seed: int = 3):
    """2-D grid MRF with seeded random unaries (Potts potential)."""
    rng = random.Random(seed)
    graph = DataGraph()
    for r in range(rows):
        for c in range(cols):
            graph.add_vertex((r, c))
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                graph.add_edge((r, c), (r, c + 1))
    graph.finalize()
    unaries = {
        v: [rng.random() + 0.1 for _ in range(labels)] for v in graph.vertices()
    }
    psi = potts_potential(labels, smoothing=1.5)

    def run() -> int:
        init_lbp_data(graph, unaries)
        engine = SequentialEngine(
            graph,
            make_lbp_update(psi, epsilon=1e-3),
            scheduler="fifo",
            max_updates=8000,
        )
        return engine.run(list(graph.vertices())).num_updates

    return run


WORKLOADS: Dict[str, Callable[[], Callable[[], int]]] = {
    "pagerank": build_pagerank_workload,
    "lbp": build_lbp_workload,
}


# ----------------------------------------------------------------------
# Real-runtime workload: Fig. 1a PageRank as round-robin sweeps.
# ----------------------------------------------------------------------
# One definition of the Fig. 1a workload: the figure reproduction owns
# the constants, this harness measures the identical graph and sweep
# count.
from benchmarks.test_fig1a_pagerank_async import (  # noqa: E402
    NUM_PAGES as FIG1A_PAGES,
    OUT_DEGREE as FIG1A_OUT_DEGREE,
    SEED as FIG1A_SEED,
    SWEEPS as FIG1A_SWEEPS,
)


def _fig1a_graph():
    # Typed float64 columns (PR 3): identical values bit for bit, but
    # runtime workers dispatch to the PageRank batch kernel and ghost
    # rounds ship array buffers instead of pickled entry lists.
    return power_law_web_graph(
        FIG1A_PAGES, out_degree=FIG1A_OUT_DEGREE, seed=FIG1A_SEED, typed=True
    )


def build_threaded_fig1a_workload(num_workers: int = 4):
    """Fig. 1a round-robin PageRank through ``ThreadedEngine``.

    The pre-runtime parallel ceiling: real threads, per-vertex RW locks,
    capped by the GIL. The runner times ``engine.run()`` only (graph
    copy and lock-table construction excluded), mirroring how the
    runtime side's ``exec_seconds`` excludes its setup, and returns
    ``(num_updates, seconds)`` for :func:`measure_timed`.
    """
    graph = _fig1a_graph()
    cap = FIG1A_SWEEPS * graph.num_vertices

    def run():
        copy = graph.copy()
        engine = ThreadedEngine(
            copy,
            make_pagerank_update(schedule="self"),
            num_workers=num_workers,
            max_updates=cap,
        )
        start = time.perf_counter()
        result = engine.run(initial=copy.vertices())
        return result.num_updates, time.perf_counter() - start

    return run


def build_runtime_fig1a_workload(
    num_workers: int, telemetry: bool = False, transport: str = "mp"
):
    """Fig. 1a round-robin PageRank on real worker OS processes.

    The runner reports the engine's own throughput accounting
    (``exec_seconds`` excludes the one-time worker launch, mirroring the
    simulated engines' ``include_load_time=False`` convention), so
    :func:`measure_runtime` wraps it instead of :func:`measure`. After
    each call ``run.last_graph`` holds the graph that run mutated, so
    correctness checks verify the *same* configuration that was
    measured.
    """
    graph = _fig1a_graph()
    coloring = greedy_coloring(graph)
    program = UpdateProgram(make_pagerank_update, kwargs={"schedule": "self"})

    def run():
        copy = graph.copy()
        engine = RuntimeChromaticEngine(
            copy,
            program,
            num_workers=num_workers,
            transport=transport,
            coloring=coloring,
            max_sweeps=FIG1A_SWEEPS,
            telemetry=telemetry,
        )
        result = engine.run(initial=copy.vertices())
        run.last_graph = copy
        run.last_result = result
        return result

    run.last_graph = None
    run.last_result = None
    return run


def fig1a_oracle_ranks() -> Dict[int, float]:
    """Ground truth: the *scalar* sequential engine in chromatic order.

    ``use_kernel=False`` pins the per-vertex interpreter — the oracle
    the batch-kernel runs must match bit for bit.
    """
    graph = _fig1a_graph()
    coloring = greedy_coloring(graph)
    engine = SequentialEngine(
        graph,
        make_pagerank_update(schedule="self"),
        scheduler=ColorSweepScheduler(coloring),
        max_updates=FIG1A_SWEEPS * graph.num_vertices,
        use_kernel=False,
    )
    engine.run(initial=graph.vertices())
    return {v: graph.vertex_data(v) for v in graph.vertices()}


def measure_timed(run, repeats: int = 3) -> Dict[str, float]:
    """Best-of-``repeats`` for runners returning ``(updates, seconds)``."""
    best: Dict[str, float] = {}
    for _ in range(repeats):
        num_updates, elapsed = run()
        ups = num_updates / elapsed
        if not best or ups > best["updates_per_sec"]:
            best = {
                "num_updates": num_updates,
                "seconds": round(elapsed, 4),
                "updates_per_sec": round(ups, 1),
            }
    return best


def measure_runtime(run, repeats: int = 3) -> Dict[str, float]:
    """Best-of-``repeats`` for a RuntimeChromaticEngine runner.

    Records both accountings: ``updates_per_sec`` over ``exec_seconds``
    (steady-state throughput; worker launch excluded, like the simulated
    engines' ``include_load_time=False``) and
    ``updates_per_sec_incl_launch`` over full wall time, so the one-time
    structure-shipping cost is visible rather than hidden. Each best is
    tracked independently (launch and execution are disturbed by host
    noise at different moments, so the repeat that wins on steady-state
    throughput is not necessarily the one that wins wall-to-wall);
    ``seconds``/``launch_seconds`` come from the best-execution repeat.

    The communication counters the PR 4 data plane and color-merged
    rounds exist to shrink ride along (they are deterministic per
    configuration, not noise-affected): ``rounds_per_sweep`` — transport
    barriers per sweep actually paid — next to
    ``rounds_per_sweep_unmerged`` — what the same run would have paid
    with one barrier per nonempty color (``rounds + rounds_saved``) —
    plus ``bytes_on_pipe`` (total pickled bytes over coordinator pipes,
    both directions) and the active ``data_plane`` flavor.
    """
    best: Dict[str, float] = {}
    best_incl = 0.0
    for _ in range(repeats):
        result = run()
        incl = (
            result.num_updates / result.wall_seconds
            if result.wall_seconds > 0
            else 0.0
        )
        best_incl = max(best_incl, incl)
        if not best or result.updates_per_sec > best["updates_per_sec"]:
            sweeps = max(result.sweeps, 1)
            best = {
                "num_updates": result.num_updates,
                "seconds": round(result.exec_seconds, 4),
                "launch_seconds": round(result.launch_seconds, 4),
                "updates_per_sec": round(result.updates_per_sec, 1),
                "rounds_per_sweep": round(result.rounds_per_sweep, 2),
                "rounds_per_sweep_unmerged": round(
                    (result.rounds + result.rounds_saved) / sweeps, 2
                ),
                "bytes_on_pipe": int(result.bytes_on_pipe),
                "data_plane": result.data_plane,
            }
    best["updates_per_sec_incl_launch"] = round(best_incl, 1)
    return best


def runtime_phase_shares(build, *args) -> Dict[str, float]:
    """Six-phase worker-time shares from one telemetry-on run.

    A separate run so the measured throughput rows stay telemetry-off
    (observation never steers the recorded numbers); the breakdown is
    the ISSUE 7 quantity — where worker wall time goes (compute / lock
    wait / ghost apply / serialization / pipe idle / snapshot).
    """
    run = build(*args, telemetry=True)
    result = run()
    return phase_share_fractions(result.telemetry)


def run_runtime_benchmarks(repeats: int = 3) -> Dict[str, Dict]:
    """Fig. 1a throughput: threaded baseline vs workers=1/2/4 processes.

    Also records whether the 4-worker run's final ranks are
    bit-identical to the sequential oracle — the correctness side of
    the speedup claim.
    """
    results: Dict[str, Dict] = {
        "threaded_4_workers": measure_timed(
            build_threaded_fig1a_workload(), repeats=repeats
        )
    }
    oracle = fig1a_oracle_ranks()
    bit_identical = True
    for workers in (1, 2, 4):
        run = build_runtime_fig1a_workload(workers)
        results[f"mp_{workers}_workers"] = measure_runtime(
            run, repeats=repeats
        )
        # Verify the exact configuration that was measured: the last
        # measured run's final ranks must equal the oracle's.
        bit_identical = bit_identical and all(
            run.last_graph.vertex_data(v) == oracle[v] for v in oracle
        )
    results["mp_4_workers"]["phase_shares"] = runtime_phase_shares(
        build_runtime_fig1a_workload, 4
    )
    threaded = results["threaded_4_workers"]["updates_per_sec"]
    for workers in (1, 2, 4):
        name = f"mp_{workers}_workers"
        row = results[name]
        row["speedup_vs_threaded"] = (
            round(row["updates_per_sec"] / threaded, 2) if threaded else 0.0
        )
        row["speedup_vs_threaded_incl_launch"] = (
            round(row["updates_per_sec_incl_launch"] / threaded, 2)
            if threaded
            else 0.0
        )
    results["bit_identical_to_sequential"] = bit_identical
    return results


def run_runtime_tcp_benchmarks(repeats: int = 3) -> Dict[str, Dict]:
    """Socket wire vs pipe wire (PR 9): the Fig. 1a workload over
    localhost TCP at workers=1/2/4, next to fresh ``MpTransport`` rows
    measured in the same process (same host-noise window, so the
    ``tcp_vs_mp`` ratio is apples to apples). The supervision counters
    ride along — ``reconnects`` / ``retries`` are expected to be zero on
    a healthy localhost link; nonzero values mean the bench itself hit
    connection churn — plus the correctness flag: every TCP run must be
    bit-identical to its mp twin *and* to the sequential oracle.
    """
    oracle = fig1a_oracle_ranks()
    results: Dict[str, Dict] = {}
    bit_identical = True
    for workers in (1, 2, 4):
        mp_run = build_runtime_fig1a_workload(workers)
        results[f"mp_{workers}_workers"] = measure_runtime(
            mp_run, repeats=repeats
        )
        tcp_run = build_runtime_fig1a_workload(workers, transport="tcp")
        row = measure_runtime(tcp_run, repeats=repeats)
        extra = tcp_run.last_result.extra
        row["reconnects"] = extra["reconnects"]
        row["retries"] = extra["retries"]
        mp_ups = results[f"mp_{workers}_workers"]["updates_per_sec"]
        row["tcp_vs_mp"] = (
            round(row["updates_per_sec"] / mp_ups, 2) if mp_ups else 0.0
        )
        results[f"tcp_{workers}_workers"] = row
        bit_identical = bit_identical and all(
            tcp_run.last_graph.vertex_data(v) == oracle[v]
            and tcp_run.last_graph.vertex_data(v)
            == mp_run.last_graph.vertex_data(v)
            for v in oracle
        )
    results["bit_identical_to_mp"] = bit_identical
    return results


# ----------------------------------------------------------------------
# Batch kernels vs the scalar interpreter (PR 3).
# ----------------------------------------------------------------------
#: Round-robin sweeps per batch-benchmark run.
BATCH_PR_VERTICES = 5000
BATCH_PR_SWEEPS = 5
BATCH_LBP_ROWS = BATCH_LBP_COLS = 30
BATCH_LBP_LABELS = 5
BATCH_LBP_UPDATES = 8000


def _typed_batch_pagerank_graph():
    """Seeded random digraph (same family as the scalar PageRank
    workload, larger) with typed float64 columns."""
    return _random_digraph(BATCH_PR_VERTICES, out_degree=8, seed=7, typed=True)


def build_batch_pagerank_workload(use_kernel: bool):
    """Fixed round-robin PageRank sweeps, scalar vs batch-kernel.

    Identical graph, coloring, and update count either way; the only
    difference is whether color-steps run through the interpreter or
    the numpy kernel. ``run.last_graph`` keeps the mutated graph so the
    recorder can check bit-identity of the two modes.
    """
    graph = _typed_batch_pagerank_graph()
    coloring = greedy_coloring(graph)
    cap = BATCH_PR_SWEEPS * graph.num_vertices

    def run():
        copy = graph.copy()
        engine = SequentialEngine(
            copy,
            make_pagerank_update(schedule="self"),
            scheduler=ColorSweepScheduler(coloring),
            max_updates=cap,
            use_kernel=use_kernel,
        )
        start = time.perf_counter()
        result = engine.run(initial=copy.vertices())
        elapsed = time.perf_counter() - start
        run.last_graph = copy
        return result.num_updates, elapsed

    run.last_graph = None
    return run


def _typed_batch_lbp_graph():
    graph, _psi = grid_2d_typed(
        BATCH_LBP_ROWS, BATCH_LBP_COLS, BATCH_LBP_LABELS,
        seed=3, smoothing=1.5,
    )
    return graph


def build_batch_lbp_workload(use_kernel: bool):
    """Residual BP on the typed grid MRF, scalar vs batch-kernel."""
    graph = _typed_batch_lbp_graph()
    coloring = greedy_coloring(graph)
    psi = potts_potential(BATCH_LBP_LABELS, smoothing=1.5)

    def run():
        copy = graph.copy()
        engine = SequentialEngine(
            copy,
            make_lbp_update_typed(psi, epsilon=1e-3),
            scheduler=ColorSweepScheduler(coloring),
            max_updates=BATCH_LBP_UPDATES,
            use_kernel=use_kernel,
        )
        start = time.perf_counter()
        result = engine.run(initial=copy.vertices())
        elapsed = time.perf_counter() - start
        run.last_graph = copy
        return result.num_updates, elapsed

    run.last_graph = None
    return run


def _graphs_identical(g1, g2) -> bool:
    import numpy as np

    return all(
        np.array_equal(
            np.asarray(g1.vertex_data(v)), np.asarray(g2.vertex_data(v))
        )
        for v in g1.vertices()
    ) and all(
        np.array_equal(
            np.asarray(g1.edge_data(*key)), np.asarray(g2.edge_data(*key))
        )
        for key in g1.edges()
    )


def run_batch_benchmarks(repeats: int = 3) -> Dict[str, Dict]:
    """Batch-kernel vs scalar-interpreter sweeps on typed columns.

    The speedup claim only counts because the answers are the same:
    each pair's final graphs are compared exactly and the flag is
    recorded next to the numbers.
    """
    results: Dict[str, Dict] = {}
    for name, builder in (
        ("pagerank", build_batch_pagerank_workload),
        ("lbp", build_batch_lbp_workload),
    ):
        scalar_run = builder(use_kernel=False)
        batch_run = builder(use_kernel=True)
        scalar = measure_timed(scalar_run, repeats=repeats)
        batch = measure_timed(batch_run, repeats=repeats)
        results[name] = {
            "scalar": scalar,
            "batch": batch,
            "speedup_vs_scalar": (
                round(
                    batch["updates_per_sec"] / scalar["updates_per_sec"], 2
                )
                if scalar["updates_per_sec"]
                else 0.0
            ),
            "bit_identical": _graphs_identical(
                scalar_run.last_graph, batch_run.last_graph
            ),
        }
    return results


# ----------------------------------------------------------------------
# Real-runtime LBP: the typed wire format under vector messages (PR 3).
# ----------------------------------------------------------------------
RUNTIME_LBP_ROWS = RUNTIME_LBP_COLS = 14
RUNTIME_LBP_LABELS = 5


def _runtime_lbp_graph():
    graph, _psi = grid_2d_typed(
        RUNTIME_LBP_ROWS, RUNTIME_LBP_COLS, RUNTIME_LBP_LABELS,
        seed=5, smoothing=1.5,
    )
    return graph


def build_runtime_lbp_workload(num_workers: int, telemetry: bool = False):
    """Grid-MRF residual BP on real worker processes, to convergence.

    Boundary messages are ``(2, L)`` float64 rows — the payload class
    the array-buffer wire format exists for (a pickled Python tuple of
    numpy vectors per entry before PR 3, one buffer per round now).
    Residual scheduling makes the update count dynamic, so the run goes
    to quiescence and the oracle must land on the identical count.
    """
    graph = _runtime_lbp_graph()
    coloring = greedy_coloring(graph)
    psi = potts_potential(RUNTIME_LBP_LABELS, smoothing=1.5)
    program = UpdateProgram(
        make_lbp_update_typed, args=(psi,), kwargs={"epsilon": 1e-3}
    )

    def run():
        copy = graph.copy()
        engine = RuntimeChromaticEngine(
            copy,
            program,
            num_workers=num_workers,
            transport="mp",
            coloring=coloring,
            telemetry=telemetry,
        )
        result = engine.run(initial=copy.vertices())
        run.last_graph = copy
        return result

    run.last_graph = None
    return run


def build_threaded_lbp_workload(num_workers: int = 4):
    """Grid-MRF residual BP through ``ThreadedEngine`` (the pre-runtime
    parallel ceiling, mirroring ``build_threaded_fig1a_workload``).

    Thread interleavings are real, so the residual run's update count
    varies slightly run to run — fine for a throughput baseline (the
    correctness story belongs to the chromatic backends, which are
    bit-identical to the oracle).
    """
    graph = _runtime_lbp_graph()
    psi = potts_potential(RUNTIME_LBP_LABELS, smoothing=1.5)

    def run():
        copy = graph.copy()
        engine = ThreadedEngine(
            copy,
            make_lbp_update_typed(psi, epsilon=1e-3),
            num_workers=num_workers,
        )
        start = time.perf_counter()
        result = engine.run(initial=copy.vertices())
        return result.num_updates, time.perf_counter() - start

    return run


def runtime_lbp_oracle():
    """Scalar sequential oracle for the runtime LBP configuration."""
    graph = _runtime_lbp_graph()
    coloring = greedy_coloring(graph)
    psi = potts_potential(RUNTIME_LBP_LABELS, smoothing=1.5)
    engine = SequentialEngine(
        graph,
        make_lbp_update_typed(psi, epsilon=1e-3),
        scheduler=ColorSweepScheduler(coloring),
        use_kernel=False,
    )
    result = engine.run(initial=graph.vertices())
    return graph, result


def run_runtime_lbp_benchmarks(repeats: int = 3) -> Dict[str, Dict]:
    """Runtime-backend LBP at workers=1/2/4 vs the sequential oracle.

    Same shape as the ``runtime_pagerank`` section: a
    ``threaded_4_workers`` GIL-bound baseline plus
    ``speedup_vs_threaded`` / ``_incl_launch`` per worker count (and
    the ``speedup_vs_mp_1`` trajectory the single-core container makes
    meaningful).
    """
    oracle_graph, oracle_result = runtime_lbp_oracle()
    results: Dict[str, Dict] = {
        "threaded_4_workers": measure_timed(
            build_threaded_lbp_workload(), repeats=repeats
        )
    }
    bit_identical = True
    for workers in (1, 2, 4):
        run = build_runtime_lbp_workload(workers)
        results[f"mp_{workers}_workers"] = measure_runtime(
            run, repeats=repeats
        )
        bit_identical = bit_identical and _graphs_identical(
            oracle_graph, run.last_graph
        )
    base = results["mp_1_workers"]["updates_per_sec"]
    threaded = results["threaded_4_workers"]["updates_per_sec"]
    for workers in (1, 2, 4):
        row = results[f"mp_{workers}_workers"]
        row["speedup_vs_mp_1"] = (
            round(row["updates_per_sec"] / base, 2) if base else 0.0
        )
        row["speedup_vs_threaded"] = (
            round(row["updates_per_sec"] / threaded, 2) if threaded else 0.0
        )
        row["speedup_vs_threaded_incl_launch"] = (
            round(row["updates_per_sec_incl_launch"] / threaded, 2)
            if threaded
            else 0.0
        )
    results["mp_4_workers"]["phase_shares"] = runtime_phase_shares(
        build_runtime_lbp_workload, 4
    )
    results["num_updates_expected"] = oracle_result.num_updates
    results["bit_identical_to_sequential"] = bit_identical
    return results


# ----------------------------------------------------------------------
# Runtime locking engine (PR 5): dynamic workloads on real processes.
# ----------------------------------------------------------------------
#: Dynamic (epsilon-gated) PageRank for the locking engine — the
#: asynchronous workload the chromatic engine cannot express without
#: round-robin sweeps.
LOCKING_PR_PAGES = 600
LOCKING_PR_EPSILON = 1e-4
#: ALS sizing (the paper's Fig. 1d workload): per-update cost is a
#: d x d solve, so the graph stays small on the 1-core container.
ALS_USERS, ALS_MOVIES, ALS_RATINGS_PER_USER = 100, 32, 10
ALS_D = 5
ALS_EPSILON = 1e-3
#: Pipeline window ablation: default vs no pipelining.
LOCKING_WINDOW = 64


def _locking_pagerank_graph():
    return power_law_web_graph(
        LOCKING_PR_PAGES, out_degree=4, seed=11, typed=True
    )


def measure_locking(run, repeats: int = 3) -> Dict[str, float]:
    """Best-of-``repeats`` for a RuntimeLockingEngine runner.

    Same two accountings as :func:`measure_runtime`; the locking engine
    has no sweeps, so the barrier metric is ``updates_per_round`` — how
    much execution each transport barrier buys, the number the pipeline
    window exists to raise (window=1 collapses it to roughly one
    blocked scope per remote hop).
    """
    best: Dict[str, float] = {}
    best_incl = 0.0
    for _ in range(repeats):
        result = run()
        incl = (
            result.num_updates / result.wall_seconds
            if result.wall_seconds > 0
            else 0.0
        )
        best_incl = max(best_incl, incl)
        if not best or result.updates_per_sec > best["updates_per_sec"]:
            best = {
                "num_updates": result.num_updates,
                "seconds": round(result.exec_seconds, 4),
                "launch_seconds": round(result.launch_seconds, 4),
                "updates_per_sec": round(result.updates_per_sec, 1),
                "rounds": result.rounds,
                "updates_per_round": round(
                    result.num_updates / max(result.rounds, 1), 2
                ),
                "bytes_on_pipe": int(result.bytes_on_pipe),
                "data_plane": result.data_plane,
            }
    best["updates_per_sec_incl_launch"] = round(best_incl, 1)
    return best


def _finish_locking_section(results: Dict[str, Dict]) -> None:
    """Shared reporting shape of the two locking sections: threaded
    speedups for every mp row and the window-1 ablation ratio on mp_4
    (``pipelining_speedup_vs_window_1`` — the acceptance number)."""
    threaded = results["threaded_4_workers"]["updates_per_sec"]
    for name in (
        "mp_1_workers", "mp_2_workers", "mp_4_workers",
        "mp_4_workers_window_1",
    ):
        row = results[name]
        row["speedup_vs_threaded"] = (
            round(row["updates_per_sec"] / threaded, 2) if threaded else 0.0
        )
    base = results["mp_4_workers_window_1"]["updates_per_sec"]
    results["mp_4_workers"]["pipelining_speedup_vs_window_1"] = (
        round(results["mp_4_workers"]["updates_per_sec"] / base, 2)
        if base
        else 0.0
    )
    results["pipeline_window"] = LOCKING_WINDOW


def build_locking_pagerank_workload(
    num_workers: int, window: int, telemetry: bool = False
):
    """Dynamic PageRank to quiescence on the pipelined locking engine."""
    graph = _locking_pagerank_graph()
    program = UpdateProgram(
        make_pagerank_update, kwargs={"epsilon": LOCKING_PR_EPSILON}
    )

    def run():
        copy = graph.copy()
        engine = RuntimeLockingEngine(
            copy,
            program,
            num_workers=num_workers,
            transport="mp",
            pipeline_window=window,
            telemetry=telemetry,
        )
        result = engine.run(initial=copy.vertices())
        run.last_graph = copy
        return result

    run.last_graph = None
    return run


def build_threaded_dynamic_pagerank(num_workers: int = 4):
    """Dynamic PageRank through ``ThreadedEngine`` (GIL-bound ceiling)."""
    graph = _locking_pagerank_graph()

    def run():
        copy = graph.copy()
        engine = ThreadedEngine(
            copy,
            make_pagerank_update(epsilon=LOCKING_PR_EPSILON),
            num_workers=num_workers,
        )
        start = time.perf_counter()
        result = engine.run(initial=copy.vertices())
        return result.num_updates, time.perf_counter() - start

    return run


def run_locking_pagerank_benchmarks(repeats: int = 3) -> Dict[str, Dict]:
    """Locking-engine dynamic PageRank at workers=1/2/4 + window ablation.

    Correctness side: the run must land on the PageRank fixed point
    (L1 distance to the dense power-iteration truth below the epsilon
    the updates stop at, summed over the graph) — sequential
    consistency promises the fixed point, not a bit pattern, so that is
    what gets recorded.
    """
    graph = _locking_pagerank_graph()
    truth = exact_pagerank(graph)
    tolerance = LOCKING_PR_EPSILON * graph.num_vertices
    results: Dict[str, Dict] = {
        "threaded_4_workers": measure_timed(
            build_threaded_dynamic_pagerank(), repeats=repeats
        )
    }
    fixed_point = True
    for workers in (1, 2, 4):
        run = build_locking_pagerank_workload(workers, LOCKING_WINDOW)
        results[f"mp_{workers}_workers"] = measure_locking(
            run, repeats=repeats
        )
        fixed_point = fixed_point and (
            l1_error(run.last_graph, truth) < tolerance
        )
    window_run = build_locking_pagerank_workload(4, window=1)
    results["mp_4_workers_window_1"] = measure_locking(
        window_run, repeats=repeats
    )
    fixed_point = fixed_point and (
        l1_error(window_run.last_graph, truth) < tolerance
    )
    results["mp_4_workers"]["phase_shares"] = runtime_phase_shares(
        build_locking_pagerank_workload, 4, LOCKING_WINDOW
    )
    _finish_locking_section(results)
    results["fixed_point_ok"] = fixed_point
    return results


def _als_graph():
    data = synthetic_netflix(
        num_users=ALS_USERS,
        num_movies=ALS_MOVIES,
        ratings_per_user=ALS_RATINGS_PER_USER,
        d_true=3,
        seed=0,
    )
    return data.graph


def build_runtime_als_workload(
    num_workers: int, window: int, telemetry: bool = False
):
    """Dynamic ALS (Fig. 1d) under edge consistency, priority order."""
    graph = _als_graph()
    from repro.apps.als import als_program

    program = als_program(ALS_D, epsilon=ALS_EPSILON)

    def run():
        copy = graph.copy()
        initialize_factors(copy, ALS_D, seed=1)
        engine = RuntimeLockingEngine(
            copy,
            program,
            num_workers=num_workers,
            transport="mp",
            scheduler="priority",
            pipeline_window=window,
            telemetry=telemetry,
        )
        result = engine.run(initial=copy.vertices())
        run.last_graph = copy
        return result

    run.last_graph = None
    return run


def build_threaded_als_workload(num_workers: int = 4):
    """Dynamic ALS through ``ThreadedEngine`` (the GIL-bound baseline)."""
    graph = _als_graph()

    def run():
        copy = graph.copy()
        initialize_factors(copy, ALS_D, seed=1)
        engine = ThreadedEngine(
            copy,
            make_als_update(ALS_D, epsilon=ALS_EPSILON),
            num_workers=num_workers,
            scheduler="priority",
        )
        start = time.perf_counter()
        result = engine.run(initial=copy.vertices())
        return result.num_updates, time.perf_counter() - start

    return run


def run_runtime_als_benchmarks(repeats: int = 3) -> Dict[str, Dict]:
    """First real-runtime ALS numbers (acceptance: pipelining wins).

    Records training RMSE per configuration — every run must descend
    from the random-factor start toward the planted model's noise
    floor — plus ``pipelining_speedup_vs_window_1`` on mp_4: the
    window>1 vs window=1 ablation the pipelined lock design exists for
    (Figs. 3b/8b).
    """
    results: Dict[str, Dict] = {
        "threaded_4_workers": measure_timed(
            build_threaded_als_workload(), repeats=repeats
        )
    }
    probe = _als_graph().copy()
    initialize_factors(probe, ALS_D, seed=1)
    rmse_start = training_rmse(probe)
    converged = True
    for workers in (1, 2, 4):
        run = build_runtime_als_workload(workers, LOCKING_WINDOW)
        row = measure_locking(run, repeats=repeats)
        rmse = training_rmse(run.last_graph)
        row["train_rmse"] = round(rmse, 4)
        converged = converged and rmse < rmse_start * 0.5
        results[f"mp_{workers}_workers"] = row
    window_run = build_runtime_als_workload(4, window=1)
    row = measure_locking(window_run, repeats=repeats)
    rmse = training_rmse(window_run.last_graph)
    row["train_rmse"] = round(rmse, 4)
    converged = converged and rmse < rmse_start * 0.5
    results["mp_4_workers_window_1"] = row
    results["mp_4_workers"]["phase_shares"] = runtime_phase_shares(
        build_runtime_als_workload, 4, LOCKING_WINDOW
    )
    results["mp_4_workers_window_1"]["phase_shares"] = runtime_phase_shares(
        build_runtime_als_workload, 4, 1
    )
    _finish_locking_section(results)
    results["train_rmse_start"] = round(rmse_start, 4)
    results["rmse_converged"] = converged
    return results


# ----------------------------------------------------------------------
# Fault tolerance: snapshot overhead and kill/recover cost (PR 6).
# ----------------------------------------------------------------------
FAULT_PR_VERTICES = 1200
FAULT_PR_SWEEPS = 8
FAULT_SNAPSHOT_EVERY = 2
FAULT_KILL = (1, 6)  # worker 1 dies at the start of round 6


def build_fault_workload(snapshot_every=None, kill=None):
    """Fig. 1a round-robin PageRank, optionally snapshotting/killed."""
    graph = power_law_web_graph(FAULT_PR_VERTICES, out_degree=4, seed=7)
    coloring = greedy_coloring(graph)
    program = UpdateProgram(make_pagerank_update, kwargs={"schedule": "self"})

    def run():
        copy = graph.copy()
        engine = RuntimeChromaticEngine(
            copy,
            program,
            num_workers=4,
            transport="mp",
            coloring=coloring,
            max_sweeps=FAULT_PR_SWEEPS,
            snapshot_every=snapshot_every,
        )
        if kill is not None:
            engine.transport.schedule_kill(*kill)
        result = engine.run(initial=copy.vertices())
        run.last_graph = copy
        run.last_result = result
        return result

    run.last_graph = None
    run.last_result = None
    return run


def _measure_hang_detection() -> Dict[str, float]:
    """PR 8 liveness cost: SIGSTOP one worker mid-run (at the shipped
    heartbeat defaults) and time the gap between the fault firing and
    the coordinator declaring the worker dead. Without heartbeats this
    was the full 120 s pipe timeout; the watchdog must land it in
    seconds."""
    graph = power_law_web_graph(FAULT_PR_VERTICES, out_degree=4, seed=7)
    coloring = greedy_coloring(graph)
    program = UpdateProgram(make_pagerank_update, kwargs={"schedule": "self"})
    transport = MpTransport(4)
    transport.schedule_fault(1, 3, mode="hang")
    engine = RuntimeChromaticEngine(
        graph.copy(),
        program,
        num_workers=4,
        transport=transport,
        coloring=coloring,
        max_sweeps=FAULT_PR_SWEEPS,
    )
    try:
        try:
            engine.run(initial=graph.vertices())
        except WorkerFailure:
            caught_at = time.monotonic()
        else:
            raise RuntimeError("injected hang was never detected")
    finally:
        transport.shutdown()
    return {
        "hung_worker": 1,
        "hung_at_round": 3,
        "heartbeat_interval_seconds": transport.heartbeat_interval,
        "heartbeat_timeout_seconds": transport.heartbeat_timeout,
        "hang_detection_seconds": round(
            caught_at - transport.last_fault_fired_at, 4
        ),
    }


def _measure_resume_from_disk(bare) -> Dict[str, float]:
    """PR 8 cold-restart cost: crash a snapshotting run with no in-run
    recovery budget, then boot a fresh engine with ``resume_from=`` the
    crashed run's snapshot root and time the restore (verify + rollback
    of a freshly-launched cluster from disk). The resumed run must still
    finish bit-identical to the never-killed one."""
    graph = power_law_web_graph(FAULT_PR_VERTICES, out_degree=4, seed=7)
    coloring = greedy_coloring(graph)
    program = UpdateProgram(make_pagerank_update, kwargs={"schedule": "self"})
    with tempfile.TemporaryDirectory() as root:
        crashed = RuntimeChromaticEngine(
            graph.copy(),
            program,
            num_workers=4,
            transport="mp",
            coloring=coloring,
            max_sweeps=FAULT_PR_SWEEPS,
            snapshot_every=1,
            snapshot_dir=root,
            max_recoveries=0,
        )
        crashed.transport.schedule_kill(*FAULT_KILL)
        try:
            crashed.run(initial=graph.vertices())
        except WorkerFailure:
            pass
        else:
            raise RuntimeError("injected kill never crashed the run")
        copy = graph.copy()
        resumed = RuntimeChromaticEngine(
            copy,
            program,
            num_workers=4,
            transport="mp",
            coloring=coloring,
            max_sweeps=FAULT_PR_SWEEPS,
            snapshot_every=1,
            snapshot_dir=root,
        )
        result = resumed.run(resume_from=root)
    return {
        "killed_worker": FAULT_KILL[0],
        "killed_at_round": FAULT_KILL[1],
        "resume_from_disk_seconds": round(result.extra["resume_seconds"], 4),
        "snapshots_rejected": result.extra["snapshots_rejected"],
        "bit_identical_to_unkilled": all(
            copy.vertex_data(v) == bare.last_graph.vertex_data(v)
            for v in bare.last_graph.vertices()
        ),
    }


def run_runtime_fault_benchmarks(repeats: int = 3) -> Dict[str, Dict]:
    """Sec. 4.3 costs, measured: the same workload (a) bare, (b) with
    periodic synchronous snapshots (``snapshot_overhead_pct`` is the
    throughput tax), and (c) with snapshots *and* an injected worker
    kill — recording how long the respawn + rollback took and that the
    recovered run still finishes bit-identical to the unkilled one."""
    results: Dict[str, Dict] = {}
    bare = build_fault_workload()
    results["no_snapshots"] = measure_runtime(bare, repeats=repeats)
    snap = build_fault_workload(snapshot_every=FAULT_SNAPSHOT_EVERY)
    results["with_snapshots"] = measure_runtime(snap, repeats=repeats)
    row = results["with_snapshots"]
    row["snapshots"] = snap.last_result.extra["snapshots"]
    row["snapshot_bytes"] = snap.last_result.extra["snapshot_bytes"]
    bare_ups = results["no_snapshots"]["updates_per_sec"]
    results["snapshot_overhead_pct"] = (
        round((bare_ups - row["updates_per_sec"]) / bare_ups * 100.0, 1)
        if bare_ups
        else 0.0
    )
    # One killed run (not best-of: the kill + backoff dominate and are
    # what is being measured, not steady-state noise).
    killed = build_fault_workload(
        snapshot_every=FAULT_SNAPSHOT_EVERY, kill=FAULT_KILL
    )
    result = killed()
    results["kill_recover"] = {
        "killed_worker": FAULT_KILL[0],
        "killed_at_round": FAULT_KILL[1],
        "recoveries": result.extra["recoveries"],
        "recovery_seconds": round(result.extra["recovery_seconds"], 4),
        "updates_per_sec": round(result.updates_per_sec, 1),
        "bit_identical_to_unkilled": all(
            killed.last_graph.vertex_data(v) == bare.last_graph.vertex_data(v)
            for v in bare.last_graph.vertices()
        ),
    }
    # PR 8 robustness latencies: one run each (the injected fault, not
    # steady-state throughput, is what is being timed).
    results["hang_detection"] = _measure_hang_detection()
    results["resume_from_disk"] = _measure_resume_from_disk(bare)
    return results


# ----------------------------------------------------------------------
# Serving subsystem (PR 10): queries/sec + latency percentiles.
# ----------------------------------------------------------------------
SERVE_VERTICES = 256
SERVE_REQUESTS = 400
SERVE_WRITE_FRAC = 0.2
SERVE_SEED = 10


def _measure_serve(frontend: str, repeats: int) -> Dict:
    """Best-of-``repeats`` mixed read/write load through one front end.

    Each repeat stands a fresh :class:`~repro.serve.GraphService`
    (locking engine, inproc transport, warm-started incremental
    PageRank) and replays the same seeded 80/20 read/write stream;
    queries/sec is client-observed wall over answered requests, and the
    latency percentiles come from the service's own per-request
    measurements (admission to reply, the same numbers the telemetry
    spans carry).
    """
    from repro.serve import (
        GraphService,
        InprocClient,
        SocketClient,
        SocketFrontend,
        build_serving_graph,
        run_mixed_load,
    )

    best: Dict = {}
    for _ in range(repeats):
        graph = build_serving_graph(SERVE_VERTICES, seed=SERVE_SEED)
        service = GraphService(
            graph, num_workers=2, transport="inproc", telemetry=False
        )
        service.start()
        sock_front = None
        client = InprocClient(service)
        try:
            if frontend == "socket":
                sock_front = SocketFrontend(service)
                client = SocketClient(sock_front.address)
            t0 = time.perf_counter()
            outcome = run_mixed_load(
                client,
                SERVE_VERTICES,
                SERVE_REQUESTS,
                write_frac=SERVE_WRITE_FRAC,
                seed=SERVE_SEED,
            )
            elapsed = time.perf_counter() - t0
            stats = service.stats()
        finally:
            if sock_front is not None:
                client.close()
                sock_front.close()
            result = service.close()
        qps = (outcome["reads"] + outcome["writes"]) / elapsed
        if best and qps <= best["queries_per_sec"]:
            continue
        row: Dict = {
            "frontend": frontend,
            "requests": SERVE_REQUESTS,
            "write_frac": SERVE_WRITE_FRAC,
            "seconds": round(elapsed, 4),
            "queries_per_sec": round(qps, 1),
            "rejected": outcome["rejected"],
            "background_updates": result.num_updates,
        }
        for op in ("read", "write"):
            for pct in ("p50_ms", "p95_ms", "p99_ms"):
                row[f"{op}_{pct}"] = round(stats[op][pct], 3)
        best = row
    return best


def run_serve_benchmarks(repeats: int = 3) -> Dict[str, Dict]:
    """PR 10 serving load test: the resident graph under a mixed
    stream, through both front ends, with request-latency percentiles
    next to the queries/sec headline."""
    return {
        "mixed_inproc": _measure_serve("inproc", repeats),
        "mixed_socket": _measure_serve("socket", repeats),
    }


# ----------------------------------------------------------------------
# Measurement.
# ----------------------------------------------------------------------
def measure(run: Callable[[], int], repeats: int = 3) -> Dict[str, float]:
    """Best-of-``repeats`` wall-clock throughput for one workload."""
    best: Dict[str, float] = {}
    for _ in range(repeats):
        t0 = time.perf_counter()
        num_updates = run()
        elapsed = time.perf_counter() - t0
        ups = num_updates / elapsed
        if not best or ups > best["updates_per_sec"]:
            best = {
                "num_updates": num_updates,
                "seconds": round(elapsed, 4),
                "updates_per_sec": round(ups, 1),
            }
    return best


def run_benchmarks(repeats: int = 3) -> Dict[str, Dict[str, float]]:
    """Measure every workload; returns ``{name: metrics}``."""
    results = {}
    for name, builder in WORKLOADS.items():
        results[name] = measure(builder(), repeats=repeats)
    return results


def _print_tcp_section(section: Dict[str, Dict]) -> None:
    for workers in (1, 2, 4):
        row = section[f"tcp_{workers}_workers"]
        print(
            f"  runtime_tcp/tcp_{workers}_workers: "
            f"{row['updates_per_sec']:.0f} updates/s "
            f"({row['tcp_vs_mp']}x vs mp; reconnects={row['reconnects']}, "
            f"retries={row['retries']})"
        )
    print(
        "  runtime_tcp/bit_identical_to_mp: "
        f"{section['bit_identical_to_mp']}"
    )


def _print_serve_section(section: Dict[str, Dict]) -> None:
    for name, row in section.items():
        print(
            f"  serve/{name}: {row['queries_per_sec']:.0f} queries/s "
            f"(read p50={row['read_p50_ms']}ms p99={row['read_p99_ms']}ms; "
            f"write p50={row['write_p50_ms']}ms p99={row['write_p99_ms']}ms; "
            f"rejected={row['rejected']})"
        )


def _tree_is_dirty() -> bool:
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return False  # not a git checkout: nothing to protect
    return bool(out.strip())


#: Independently re-runnable sections for ``--sections``: each callable
#: takes ``repeats`` and returns that top-level key's value.
SECTIONS: Dict[str, Callable[[int], Dict]] = {
    "current": lambda repeats: run_benchmarks(repeats=repeats),
    "runtime_pagerank": run_runtime_benchmarks,
    "batch": run_batch_benchmarks,
    "runtime_lbp": run_runtime_lbp_benchmarks,
    "runtime_locking_pagerank": run_locking_pagerank_benchmarks,
    "runtime_als": run_runtime_als_benchmarks,
    "runtime_fault": run_runtime_fault_benchmarks,
    "runtime_pagerank_tcp": run_runtime_tcp_benchmarks,
    "serve": run_serve_benchmarks,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N repetitions"
    )
    parser.add_argument(
        "--force", action="store_true",
        help="overwrite the output even from a dirty working tree",
    )
    parser.add_argument(
        "--print-only", action="store_true",
        help="measure and print without writing the output file",
    )
    parser.add_argument(
        "--sections", type=str, default=None, metavar="NAME[,NAME...]",
        help="re-measure only the named sections and merge them into the "
        "existing output file (choices: " + ", ".join(SECTIONS) + ")",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    if (
        not args.print_only
        and not args.force
        and args.output.exists()
        and _tree_is_dirty()
    ):
        print(
            f"refusing to overwrite {args.output} from a dirty working "
            "tree; commit first or pass --force",
            file=sys.stderr,
        )
        return 1

    if args.sections is not None:
        names = [s.strip() for s in args.sections.split(",") if s.strip()]
        unknown = sorted(set(names) - set(SECTIONS))
        if not names or unknown:
            parser.error(
                "unknown sections: " + ", ".join(unknown or ["(none given)"])
                + " (choices: " + ", ".join(SECTIONS) + ")"
            )
        if args.output.exists():
            payload = json.loads(args.output.read_text())
        else:
            payload = {
                "harness": "benchmarks.perf.bench_core",
                "baseline": PRE_REFACTOR_BASELINE,
            }
        payload["python"] = platform.python_version()
        for name in names:
            payload[name] = SECTIONS[name](args.repeats)
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        if args.print_only:
            print(text, end="")
            return 0
        args.output.write_text(text)
        print(f"wrote {args.output} (sections: {', '.join(names)})")
        if "runtime_pagerank_tcp" in names:
            _print_tcp_section(payload["runtime_pagerank_tcp"])
        if "serve" in names:
            _print_serve_section(payload["serve"])
        return 0

    results = run_benchmarks(repeats=args.repeats)
    runtime_results = run_runtime_benchmarks(repeats=args.repeats)
    batch_results = run_batch_benchmarks(repeats=args.repeats)
    runtime_lbp_results = run_runtime_lbp_benchmarks(repeats=args.repeats)
    locking_pr_results = run_locking_pagerank_benchmarks(repeats=args.repeats)
    runtime_als_results = run_runtime_als_benchmarks(repeats=args.repeats)
    fault_results = run_runtime_fault_benchmarks(repeats=args.repeats)
    tcp_results = run_runtime_tcp_benchmarks(repeats=args.repeats)
    serve_results = run_serve_benchmarks(repeats=args.repeats)
    payload = {
        "harness": "benchmarks.perf.bench_core",
        "python": platform.python_version(),
        "baseline": PRE_REFACTOR_BASELINE,
        "current": results,
        "runtime_pagerank": runtime_results,
        "batch": batch_results,
        "runtime_lbp": runtime_lbp_results,
        "runtime_locking_pagerank": locking_pr_results,
        "runtime_als": runtime_als_results,
        "runtime_fault": fault_results,
        "runtime_pagerank_tcp": tcp_results,
        "serve": serve_results,
        "speedup": {
            name: round(
                results[name]["updates_per_sec"]
                / PRE_REFACTOR_BASELINE[name]["updates_per_sec"],
                2,
            )
            for name in results
            if PRE_REFACTOR_BASELINE.get(name, {}).get("updates_per_sec")
        },
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.print_only:
        print(text, end="")
        return 0
    args.output.write_text(text)
    print(f"wrote {args.output}")
    for name, metrics in results.items():
        speedup = payload["speedup"].get(name)
        note = f" ({speedup}x over baseline)" if speedup else ""
        print(f"  {name}: {metrics['updates_per_sec']:.0f} updates/s{note}")
    for name in ("threaded_4_workers", "mp_1_workers", "mp_2_workers", "mp_4_workers"):
        metrics = runtime_results[name]
        speedup = metrics.get("speedup_vs_threaded")
        incl = metrics.get("speedup_vs_threaded_incl_launch")
        note = (
            f" ({speedup}x over threaded; {incl}x incl. launch)"
            if speedup
            else ""
        )
        print(
            f"  runtime/{name}: {metrics['updates_per_sec']:.0f} "
            f"updates/s{note}"
        )
    print(
        "  runtime/bit_identical_to_sequential: "
        f"{runtime_results['bit_identical_to_sequential']}"
    )
    for name, row in batch_results.items():
        print(
            f"  batch/{name}: {row['batch']['updates_per_sec']:.0f} "
            f"updates/s ({row['speedup_vs_scalar']}x over scalar "
            f"interpreter; bit_identical={row['bit_identical']})"
        )
    for workers in (1, 2, 4):
        row = runtime_lbp_results[f"mp_{workers}_workers"]
        print(
            f"  runtime_lbp/mp_{workers}_workers: "
            f"{row['updates_per_sec']:.0f} updates/s "
            f"({row['speedup_vs_threaded']}x over threaded; "
            f"{row['speedup_vs_mp_1']}x over mp_1; "
            f"{row['rounds_per_sweep']} rounds/sweep vs "
            f"{row['rounds_per_sweep_unmerged']} unmerged)"
        )
    print(
        "  runtime_lbp/bit_identical_to_sequential: "
        f"{runtime_lbp_results['bit_identical_to_sequential']}"
    )
    for section, label, flag_key in (
        (locking_pr_results, "runtime_locking_pagerank", "fixed_point_ok"),
        (runtime_als_results, "runtime_als", "rmse_converged"),
    ):
        for name in (
            "threaded_4_workers", "mp_1_workers", "mp_2_workers",
            "mp_4_workers", "mp_4_workers_window_1",
        ):
            row = section[name]
            speedup = row.get("speedup_vs_threaded")
            note = f" ({speedup}x over threaded)" if speedup else ""
            print(
                f"  {label}/{name}: {row['updates_per_sec']:.0f} "
                f"updates/s{note}"
            )
        print(
            f"  {label}/pipelining_speedup_vs_window_1 (mp_4): "
            f"{section['mp_4_workers']['pipelining_speedup_vs_window_1']}x; "
            f"{flag_key}={section[flag_key]}"
        )
    recover = fault_results["kill_recover"]
    print(
        "  runtime_fault: snapshot overhead "
        f"{fault_results['snapshot_overhead_pct']}% "
        f"({fault_results['with_snapshots']['snapshots']} snapshots, "
        f"{fault_results['with_snapshots']['snapshot_bytes'] / 1024:.0f} "
        "KiB); kill+recover in "
        f"{recover['recovery_seconds'] * 1e3:.0f} ms, bit_identical="
        f"{recover['bit_identical_to_unkilled']}"
    )
    _print_tcp_section(tcp_results)
    hang = fault_results["hang_detection"]
    resume = fault_results["resume_from_disk"]
    print(
        "  runtime_fault: hang detected in "
        f"{hang['hang_detection_seconds']:.2f} s "
        f"(heartbeat timeout {hang['heartbeat_timeout_seconds']:.1f} s); "
        "resume from disk in "
        f"{resume['resume_from_disk_seconds'] * 1e3:.0f} ms, bit_identical="
        f"{resume['bit_identical_to_unkilled']}"
    )
    _print_serve_section(serve_results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
