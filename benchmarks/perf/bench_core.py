"""Core hot-path micro-benchmark: updates/sec through the real engines.

Unlike the ``benchmarks/test_fig*`` modules (which reproduce the paper's
*figures* on the simulated cluster), this module measures raw wall-clock
throughput on three fronts:

* **PageRank** through ``SequentialEngine`` on a seeded random directed
  graph (scalar vertex data, the paper's running example, Alg. 1);
* **Loopy BP** through ``SequentialEngine`` on a 2-D grid MRF
  (numpy-vector vertex/edge data, the workload of Secs. 4.2.2/5.2);
* **Real-runtime PageRank** (PR 2): the Fig. 1a workload (1200-page
  power-law web graph) as round-robin sweeps, on ``ThreadedEngine``
  (4 GIL-bound threads — the old parallel ceiling) versus
  ``RuntimeChromaticEngine`` over ``MpTransport`` at 1/2/4 worker OS
  processes, with the results checked bit-identical against the
  ``ColorSweepScheduler``-driven sequential oracle.

Results are written to ``BENCH_core.json`` at the repo root together
with the pre-refactor baseline (measured with this same harness on the
seed tree, commit 362b979), so the perf trajectory of later PRs is
anchored to a fixed reference.

Run it as::

    PYTHONPATH=src python -m benchmarks.perf.bench_core
    make bench

The script refuses to overwrite an existing ``BENCH_core.json`` from a
dirty working tree (pass ``--force`` to override): recorded numbers must
be reproducible from a committed state.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict

from repro.apps.lbp import init_lbp_data, make_lbp_update, potts_potential
from repro.apps.pagerank import make_pagerank_update
from repro.core.coloring import greedy_coloring
from repro.core.engine import SequentialEngine, ThreadedEngine
from repro.core.graph import DataGraph
from repro.datasets.webgraph import power_law_web_graph
from repro.runtime import (
    ColorSweepScheduler,
    RuntimeChromaticEngine,
    UpdateProgram,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_core.json"

#: Throughput of this same harness on the seed tree (commit 362b979,
#: pre-CSR dict-of-lists storage, per-update Scope allocation), measured
#: on the reference container (Python 3.11.7, best of 3). Kept in-file
#: so every future ``BENCH_core.json`` carries the anchor it is
#: compared against.
PRE_REFACTOR_BASELINE: Dict[str, Dict[str, float]] = {
    "pagerank": {
        "num_updates": 3645,
        "seconds": 0.068,
        "updates_per_sec": 53576.3,
    },
    "lbp": {
        "num_updates": 8000,
        "seconds": 0.489,
        "updates_per_sec": 16359.4,
    },
}


# ----------------------------------------------------------------------
# Workload builders (deterministic; structure identical across runs).
# ----------------------------------------------------------------------
def build_pagerank_workload(
    n: int = 2000, out_degree: int = 8, seed: int = 7
):
    """Seeded random directed graph with 1/out-degree edge weights."""
    rng = random.Random(seed)
    edges = set()
    for i in range(n):
        for _ in range(out_degree):
            j = rng.randrange(n)
            if j != i:
                edges.add((i, j))
    out_count: Dict[int, int] = {}
    for (i, _j) in edges:
        out_count[i] = out_count.get(i, 0) + 1
    graph = DataGraph()
    for i in range(n):
        graph.add_vertex(i, data=1.0 / n)
    for (i, j) in sorted(edges):
        graph.add_edge(i, j, data=1.0 / out_count[i])
    graph.finalize()

    def run() -> int:
        for v in range(n):
            graph.set_vertex_data(v, 1.0 / n)
        engine = SequentialEngine(
            graph,
            make_pagerank_update(epsilon=1e-4),
            scheduler="fifo",
            max_updates=60000,
        )
        return engine.run(range(n)).num_updates

    return run


def build_lbp_workload(rows: int = 20, cols: int = 20, labels: int = 5, seed: int = 3):
    """2-D grid MRF with seeded random unaries (Potts potential)."""
    rng = random.Random(seed)
    graph = DataGraph()
    for r in range(rows):
        for c in range(cols):
            graph.add_vertex((r, c))
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                graph.add_edge((r, c), (r, c + 1))
    graph.finalize()
    unaries = {
        v: [rng.random() + 0.1 for _ in range(labels)] for v in graph.vertices()
    }
    psi = potts_potential(labels, smoothing=1.5)

    def run() -> int:
        init_lbp_data(graph, unaries)
        engine = SequentialEngine(
            graph,
            make_lbp_update(psi, epsilon=1e-3),
            scheduler="fifo",
            max_updates=8000,
        )
        return engine.run(list(graph.vertices())).num_updates

    return run


WORKLOADS: Dict[str, Callable[[], Callable[[], int]]] = {
    "pagerank": build_pagerank_workload,
    "lbp": build_lbp_workload,
}


# ----------------------------------------------------------------------
# Real-runtime workload: Fig. 1a PageRank as round-robin sweeps.
# ----------------------------------------------------------------------
# One definition of the Fig. 1a workload: the figure reproduction owns
# the constants, this harness measures the identical graph and sweep
# count.
from benchmarks.test_fig1a_pagerank_async import (  # noqa: E402
    NUM_PAGES as FIG1A_PAGES,
    OUT_DEGREE as FIG1A_OUT_DEGREE,
    SEED as FIG1A_SEED,
    SWEEPS as FIG1A_SWEEPS,
)


def _fig1a_graph():
    return power_law_web_graph(
        FIG1A_PAGES, out_degree=FIG1A_OUT_DEGREE, seed=FIG1A_SEED
    )


def build_threaded_fig1a_workload(num_workers: int = 4):
    """Fig. 1a round-robin PageRank through ``ThreadedEngine``.

    The pre-runtime parallel ceiling: real threads, per-vertex RW locks,
    capped by the GIL. The runner times ``engine.run()`` only (graph
    copy and lock-table construction excluded), mirroring how the
    runtime side's ``exec_seconds`` excludes its setup, and returns
    ``(num_updates, seconds)`` for :func:`measure_timed`.
    """
    graph = _fig1a_graph()
    cap = FIG1A_SWEEPS * graph.num_vertices

    def run():
        copy = graph.copy()
        engine = ThreadedEngine(
            copy,
            make_pagerank_update(schedule="self"),
            num_workers=num_workers,
            max_updates=cap,
        )
        start = time.perf_counter()
        result = engine.run(initial=copy.vertices())
        return result.num_updates, time.perf_counter() - start

    return run


def build_runtime_fig1a_workload(num_workers: int):
    """Fig. 1a round-robin PageRank on real worker OS processes.

    The runner reports the engine's own throughput accounting
    (``exec_seconds`` excludes the one-time worker launch, mirroring the
    simulated engines' ``include_load_time=False`` convention), so
    :func:`measure_runtime` wraps it instead of :func:`measure`. After
    each call ``run.last_graph`` holds the graph that run mutated, so
    correctness checks verify the *same* configuration that was
    measured.
    """
    graph = _fig1a_graph()
    coloring = greedy_coloring(graph)
    program = UpdateProgram(make_pagerank_update, kwargs={"schedule": "self"})

    def run():
        copy = graph.copy()
        engine = RuntimeChromaticEngine(
            copy,
            program,
            num_workers=num_workers,
            transport="mp",
            coloring=coloring,
            max_sweeps=FIG1A_SWEEPS,
        )
        result = engine.run(initial=copy.vertices())
        run.last_graph = copy
        return result

    run.last_graph = None
    return run


def fig1a_oracle_ranks() -> Dict[int, float]:
    """Ground truth: the sequential engine in chromatic order."""
    graph = _fig1a_graph()
    coloring = greedy_coloring(graph)
    engine = SequentialEngine(
        graph,
        make_pagerank_update(schedule="self"),
        scheduler=ColorSweepScheduler(coloring),
        max_updates=FIG1A_SWEEPS * graph.num_vertices,
    )
    engine.run(initial=graph.vertices())
    return {v: graph.vertex_data(v) for v in graph.vertices()}


def measure_timed(run, repeats: int = 3) -> Dict[str, float]:
    """Best-of-``repeats`` for runners returning ``(updates, seconds)``."""
    best: Dict[str, float] = {}
    for _ in range(repeats):
        num_updates, elapsed = run()
        ups = num_updates / elapsed
        if not best or ups > best["updates_per_sec"]:
            best = {
                "num_updates": num_updates,
                "seconds": round(elapsed, 4),
                "updates_per_sec": round(ups, 1),
            }
    return best


def measure_runtime(run, repeats: int = 3) -> Dict[str, float]:
    """Best-of-``repeats`` for a RuntimeChromaticEngine runner.

    Records both accountings: ``updates_per_sec`` over ``exec_seconds``
    (steady-state throughput; worker launch excluded, like the simulated
    engines' ``include_load_time=False``) and
    ``updates_per_sec_incl_launch`` over full wall time, so the one-time
    structure-shipping cost is visible rather than hidden.
    """
    best: Dict[str, float] = {}
    for _ in range(repeats):
        result = run()
        if not best or result.updates_per_sec > best["updates_per_sec"]:
            incl = (
                result.num_updates / result.wall_seconds
                if result.wall_seconds > 0
                else 0.0
            )
            best = {
                "num_updates": result.num_updates,
                "seconds": round(result.exec_seconds, 4),
                "launch_seconds": round(result.launch_seconds, 4),
                "updates_per_sec": round(result.updates_per_sec, 1),
                "updates_per_sec_incl_launch": round(incl, 1),
            }
    return best


def run_runtime_benchmarks(repeats: int = 3) -> Dict[str, Dict]:
    """Fig. 1a throughput: threaded baseline vs workers=1/2/4 processes.

    Also records whether the 4-worker run's final ranks are
    bit-identical to the sequential oracle — the correctness side of
    the speedup claim.
    """
    results: Dict[str, Dict] = {
        "threaded_4_workers": measure_timed(
            build_threaded_fig1a_workload(), repeats=repeats
        )
    }
    oracle = fig1a_oracle_ranks()
    bit_identical = True
    for workers in (1, 2, 4):
        run = build_runtime_fig1a_workload(workers)
        results[f"mp_{workers}_workers"] = measure_runtime(
            run, repeats=repeats
        )
        # Verify the exact configuration that was measured: the last
        # measured run's final ranks must equal the oracle's.
        bit_identical = bit_identical and all(
            run.last_graph.vertex_data(v) == oracle[v] for v in oracle
        )
    threaded = results["threaded_4_workers"]["updates_per_sec"]
    for workers in (1, 2, 4):
        name = f"mp_{workers}_workers"
        row = results[name]
        row["speedup_vs_threaded"] = (
            round(row["updates_per_sec"] / threaded, 2) if threaded else 0.0
        )
        row["speedup_vs_threaded_incl_launch"] = (
            round(row["updates_per_sec_incl_launch"] / threaded, 2)
            if threaded
            else 0.0
        )
    results["bit_identical_to_sequential"] = bit_identical
    return results


# ----------------------------------------------------------------------
# Measurement.
# ----------------------------------------------------------------------
def measure(run: Callable[[], int], repeats: int = 3) -> Dict[str, float]:
    """Best-of-``repeats`` wall-clock throughput for one workload."""
    best: Dict[str, float] = {}
    for _ in range(repeats):
        t0 = time.perf_counter()
        num_updates = run()
        elapsed = time.perf_counter() - t0
        ups = num_updates / elapsed
        if not best or ups > best["updates_per_sec"]:
            best = {
                "num_updates": num_updates,
                "seconds": round(elapsed, 4),
                "updates_per_sec": round(ups, 1),
            }
    return best


def run_benchmarks(repeats: int = 3) -> Dict[str, Dict[str, float]]:
    """Measure every workload; returns ``{name: metrics}``."""
    results = {}
    for name, builder in WORKLOADS.items():
        results[name] = measure(builder(), repeats=repeats)
    return results


def _tree_is_dirty() -> bool:
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return False  # not a git checkout: nothing to protect
    return bool(out.strip())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N repetitions"
    )
    parser.add_argument(
        "--force", action="store_true",
        help="overwrite the output even from a dirty working tree",
    )
    parser.add_argument(
        "--print-only", action="store_true",
        help="measure and print without writing the output file",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    if (
        not args.print_only
        and not args.force
        and args.output.exists()
        and _tree_is_dirty()
    ):
        print(
            f"refusing to overwrite {args.output} from a dirty working "
            "tree; commit first or pass --force",
            file=sys.stderr,
        )
        return 1

    results = run_benchmarks(repeats=args.repeats)
    runtime_results = run_runtime_benchmarks(repeats=args.repeats)
    payload = {
        "harness": "benchmarks.perf.bench_core",
        "python": platform.python_version(),
        "baseline": PRE_REFACTOR_BASELINE,
        "current": results,
        "runtime_pagerank": runtime_results,
        "speedup": {
            name: round(
                results[name]["updates_per_sec"]
                / PRE_REFACTOR_BASELINE[name]["updates_per_sec"],
                2,
            )
            for name in results
            if PRE_REFACTOR_BASELINE.get(name, {}).get("updates_per_sec")
        },
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.print_only:
        print(text, end="")
        return 0
    args.output.write_text(text)
    print(f"wrote {args.output}")
    for name, metrics in results.items():
        speedup = payload["speedup"].get(name)
        note = f" ({speedup}x over baseline)" if speedup else ""
        print(f"  {name}: {metrics['updates_per_sec']:.0f} updates/s{note}")
    for name in ("threaded_4_workers", "mp_1_workers", "mp_2_workers", "mp_4_workers"):
        metrics = runtime_results[name]
        speedup = metrics.get("speedup_vs_threaded")
        incl = metrics.get("speedup_vs_threaded_incl_launch")
        note = (
            f" ({speedup}x over threaded; {incl}x incl. launch)"
            if speedup
            else ""
        )
        print(
            f"  runtime/{name}: {metrics['updates_per_sec']:.0f} "
            f"updates/s{note}"
        )
    print(
        "  runtime/bit_identical_to_sequential: "
        f"{runtime_results['bit_identical_to_sequential']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
