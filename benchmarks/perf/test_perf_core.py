"""Perf-marked checks over the core hot path (``pytest -m perf``).

These are *not* part of the tier-1 suite (the root conftest skips the
``perf`` marker by default): they exercise the same workloads as
``bench_core`` and assert the properties the recorded numbers rely on —
deterministic update counts and a hot loop that actually beats the
recorded pre-refactor baseline on this machine.
"""

import os

import pytest

from benchmarks.perf.bench_core import (
    PRE_REFACTOR_BASELINE,
    build_lbp_workload,
    build_pagerank_workload,
    build_runtime_fig1a_workload,
    build_threaded_fig1a_workload,
    fig1a_oracle_ranks,
    measure,
    measure_runtime,
    measure_timed,
)

pytestmark = pytest.mark.perf


def test_pagerank_workload_is_deterministic():
    run = build_pagerank_workload()
    assert run() == run()


def test_lbp_workload_is_deterministic():
    run = build_lbp_workload()
    assert run() == run()


def test_measure_reports_throughput():
    metrics = measure(build_pagerank_workload(), repeats=1)
    assert metrics["num_updates"] > 0
    assert metrics["updates_per_sec"] > 0


@pytest.mark.skipif(
    os.environ.get("CI", "").lower() == "true",
    reason="absolute baseline was recorded on the reference container; "
    "a slow shared CI runner fails it with no code defect (the "
    "same-machine relative checks below still run)",
)
def test_pagerank_beats_recorded_baseline():
    """The pooled-scope CSR hot loop must outrun the recorded seed
    throughput with comfortable slack for machine variance."""
    baseline = PRE_REFACTOR_BASELINE["pagerank"]["updates_per_sec"]
    if not baseline:
        pytest.skip("no recorded baseline")
    metrics = measure(build_pagerank_workload(), repeats=3)
    assert metrics["updates_per_sec"] > 1.5 * baseline


def _final_ranks(graph):
    return {v: graph.vertex_data(v) for v in graph.vertices()}


def test_runtime_fig1a_is_deterministic():
    """Two real-process runs must produce the same updates AND the same
    final ranks (the sweep cap fixes the count by construction, so only
    the data comparison can catch nondeterminism)."""
    run = build_runtime_fig1a_workload(num_workers=2)
    first = run()
    first_ranks = _final_ranks(run.last_graph)
    second = run()
    assert first.num_updates == second.num_updates == 14400
    assert first_ranks == _final_ranks(run.last_graph)


def test_runtime_matches_sequential_oracle():
    """The speedup claim is only meaningful if the answer is the same:
    final ranks at 4 workers must equal the sequential oracle's exactly
    (same builder the throughput measurement uses)."""
    oracle = fig1a_oracle_ranks()
    run = build_runtime_fig1a_workload(num_workers=4)
    result = run()
    assert result.num_updates == len(oracle) * 12
    assert _final_ranks(run.last_graph) == oracle


def test_runtime_processes_beat_threaded_engine():
    """Real worker processes must outrun the GIL-bound threaded engine
    on the Fig. 1a workload (recorded headroom is ~2.2x at 4 workers on
    a single-core container; assert with slack for machine variance)."""
    threaded = measure_timed(build_threaded_fig1a_workload(), repeats=3)
    runtime = measure_runtime(build_runtime_fig1a_workload(4), repeats=3)
    assert (
        runtime["updates_per_sec"] > 1.3 * threaded["updates_per_sec"]
    ), (runtime, threaded)


# ----------------------------------------------------------------------
# Batch kernels (PR 3): correctness of the measured configurations and
# the headline speedup, with CI slack.
# ----------------------------------------------------------------------
from benchmarks.perf.bench_core import (  # noqa: E402
    _graphs_identical,
    build_batch_pagerank_workload,
    build_runtime_lbp_workload,
    runtime_lbp_oracle,
)


def test_batch_pagerank_is_bit_identical_to_scalar():
    """The recorded batch/scalar pair must agree bit for bit — the
    speedup number is only meaningful under the kernel contract."""
    scalar = build_batch_pagerank_workload(use_kernel=False)
    batch = build_batch_pagerank_workload(use_kernel=True)
    updates_scalar, _ = scalar()
    updates_batch, _ = batch()
    assert updates_scalar == updates_batch
    assert _graphs_identical(scalar.last_graph, batch.last_graph)


def test_batch_pagerank_beats_scalar_interpreter():
    """Batch-kernel sweeps must decisively outrun the interpreter
    (recorded target is >= 10x on the reference container; asserted
    here with generous slack for shared CI runners)."""
    scalar = measure_timed(build_batch_pagerank_workload(False), repeats=3)
    batch = measure_timed(build_batch_pagerank_workload(True), repeats=3)
    assert batch["updates_per_sec"] > 3.0 * scalar["updates_per_sec"], (
        scalar,
        batch,
    )


def test_runtime_lbp_matches_sequential_oracle():
    """The runtime LBP configuration the bench measures must converge
    to the oracle's exact messages/beliefs and update count."""
    oracle_graph, oracle_result = runtime_lbp_oracle()
    run = build_runtime_lbp_workload(num_workers=2)
    result = run()
    assert result.converged
    assert result.num_updates == oracle_result.num_updates
    assert _graphs_identical(oracle_graph, run.last_graph)


# ----------------------------------------------------------------------
# Runtime locking engine (PR 5): the measured configurations must land
# on the right fixed points, and pipelining must actually pay.
# ----------------------------------------------------------------------
from benchmarks.perf.bench_core import (  # noqa: E402
    ALS_D,
    LOCKING_PR_EPSILON,
    LOCKING_WINDOW,
    _locking_pagerank_graph,
    build_locking_pagerank_workload,
    build_runtime_als_workload,
    measure_locking,
)
from repro.apps.als import initialize_factors, training_rmse  # noqa: E402
from repro.apps.pagerank import exact_pagerank, l1_error  # noqa: E402


def test_locking_pagerank_reaches_fixed_point():
    """Sequential consistency promises the fixed point, not a bit
    pattern: the measured configuration must land within the stopping
    epsilon of the dense power-iteration truth."""
    graph = _locking_pagerank_graph()
    truth = exact_pagerank(graph)
    run = build_locking_pagerank_workload(num_workers=2, window=64)
    result = run()
    assert result.converged
    assert l1_error(run.last_graph, truth) < (
        LOCKING_PR_EPSILON * graph.num_vertices
    )


def test_runtime_als_descends_to_planted_model():
    """The measured ALS run must descend from the random start toward
    the planted low-rank model's noise floor."""
    run = build_runtime_als_workload(num_workers=2, window=64)
    result = run()
    assert result.converged
    probe = run.last_graph.copy()
    initialize_factors(probe, ALS_D, seed=1)
    assert training_rmse(run.last_graph) < 0.5 * training_rmse(probe)


def test_als_pipelining_beats_window_one():
    """The acceptance gate of ISSUE 5: a pipelined window must beat
    window=1 on mp_4 (generous slack for shared CI runners — the
    recorded BENCH_core.json numbers carry the real margin)."""
    pipelined = measure_locking(
        build_runtime_als_workload(num_workers=4, window=64), repeats=2
    )
    serial = measure_locking(
        build_runtime_als_workload(num_workers=4, window=1), repeats=2
    )
    assert pipelined["updates_per_sec"] > 1.1 * serial["updates_per_sec"], (
        pipelined,
        serial,
    )


# ----------------------------------------------------------------------
# Runtime observability (ISSUE 7): telemetry must be cheap when on and
# free when off, and the traced run must actually explain worker time.
# ----------------------------------------------------------------------
import statistics  # noqa: E402
import time  # noqa: E402

from repro.obs import summarize  # noqa: E402


def test_telemetry_on_overhead_under_10_percent():
    """Tracing the bench PageRank workload may cost at most 10% of the
    untraced throughput (the piggyback design means no extra barriers,
    so the cost is span bookkeeping plus slightly larger replies).

    The off/on repeats are *interleaved* (host noise on a shared runner
    drifts over seconds, so back-to-back blocks would attribute that
    drift to telemetry) and compared median-to-median — per-run
    throughput on a noisy box swings far more than the effect under
    test, and the median is the stable estimator of the two."""
    run_off = build_runtime_fig1a_workload(4)
    run_on = build_runtime_fig1a_workload(4, telemetry=True)
    offs, ons = [], []
    for _ in range(7):
        offs.append(run_off().updates_per_sec)
        ons.append(run_on().updates_per_sec)
    med_off = statistics.median(offs)
    med_on = statistics.median(ons)
    assert med_on >= med_off / 1.10, (med_on, med_off, ons, offs)


def test_telemetry_off_overhead_estimated_under_2_percent():
    """Telemetry off must be near-free: one falsy attribute check per
    would-be span or counter site. Estimate the dormant cost as
    (sites hit in a traced run) x (measured cost of one check), with a
    3x safety factor for guard branches that never record, and demand
    it stays under 2% of the untraced execution time."""

    class _Dormant:
        __slots__ = ("_obs",)

        def __init__(self):
            self._obs = None

    obj = _Dormant()
    loops = 200_000
    start = time.perf_counter()
    for _ in range(loops):
        if obj._obs is not None:  # pragma: no cover - never taken
            raise AssertionError
    per_check = (time.perf_counter() - start) / loops

    run = build_runtime_fig1a_workload(4, telemetry=True)
    telemetry = run().telemetry
    # One dormant check per recorded span, plus a few per observed
    # round for the counter sites (counter *values* count ring entries,
    # not checks — the increment happens once per round per name).
    rounds = sum(
        counters.get("plane_rounds", 0)
        for counters in telemetry.counters.values()
    )
    sites_hit = len(telemetry.events) + 4 * rounds
    off = measure_runtime(build_runtime_fig1a_workload(4), repeats=2)
    dormant_cost = 3 * sites_hit * per_check
    assert dormant_cost < 0.02 * off["seconds"], (
        dormant_cost,
        off["seconds"],
        sites_hit,
        per_check,
    )


def test_traced_als_attributes_worker_time():
    """ISSUE 7 acceptance: a traced ALS mp_4 run must attribute >= 95%
    of worker wall time across the six phases, and the grant-latency
    occupancy tags must distinguish window=1 from window=64."""
    run = build_runtime_als_workload(4, LOCKING_WINDOW, telemetry=True)
    rep = summarize(run().telemetry)
    assert rep["attribution"] >= 0.95, rep["attribution"]
    assert rep["grant_latency"]["count"] > 0
    assert rep["grant_latency"]["occupancy_max"] > 1
    window1 = build_runtime_als_workload(4, 1, telemetry=True)
    rep1 = summarize(window1().telemetry)
    assert rep1["grant_latency"]["occupancy_max"] <= 1
    assert rep1["grant_latency"]["hist_us"] != rep["grant_latency"]["hist_us"]
