"""Perf-marked checks over the core hot path (``pytest -m perf``).

These are *not* part of the tier-1 suite (the root conftest skips the
``perf`` marker by default): they exercise the same workloads as
``bench_core`` and assert the properties the recorded numbers rely on —
deterministic update counts and a hot loop that actually beats the
recorded pre-refactor baseline on this machine.
"""

import pytest

from benchmarks.perf.bench_core import (
    PRE_REFACTOR_BASELINE,
    build_lbp_workload,
    build_pagerank_workload,
    measure,
)

pytestmark = pytest.mark.perf


def test_pagerank_workload_is_deterministic():
    run = build_pagerank_workload()
    assert run() == run()


def test_lbp_workload_is_deterministic():
    run = build_lbp_workload()
    assert run() == run()


def test_measure_reports_throughput():
    metrics = measure(build_pagerank_workload(), repeats=1)
    assert metrics["num_updates"] > 0
    assert metrics["updates_per_sec"] > 0


def test_pagerank_beats_recorded_baseline():
    """The pooled-scope CSR hot loop must outrun the recorded seed
    throughput with comfortable slack for machine variance."""
    baseline = PRE_REFACTOR_BASELINE["pagerank"]["updates_per_sec"]
    if not baseline:
        pytest.skip("no recorded baseline")
    metrics = measure(build_pagerank_workload(), repeats=3)
    assert metrics["updates_per_sec"] > 1.5 * baseline
