"""Shared benchmark helpers: every experiment runs exactly once under
pytest-benchmark (these are simulations, not micro-benchmarks)."""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment a single time through pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
