"""Eq. 3 / Sec. 4.3: Young's optimal checkpoint interval.

The paper: 64 machines, per-machine MTBF of one year, two-minute
checkpoints -> optimal interval about 3 hours, "far exceeding the
runtime of our experiments" — the argument against Hadoop's always-on
fault-tolerance tax.
"""

from repro.bench import Figure
from repro.baselines import netflix_workload, graphlab_runtime
from repro.distributed import young_checkpoint_interval
from repro.distributed.snapshot import SECONDS_PER_YEAR


def run_experiment():
    machine_counts = [4, 16, 64, 256]
    intervals = [
        young_checkpoint_interval(120.0, SECONDS_PER_YEAR, m)
        for m in machine_counts
    ]
    fig = Figure(
        figure_id="eq3_young",
        title="Young's optimal checkpoint interval (2-min checkpoints, "
        "1-year per-machine MTBF)",
        x_label="machines",
        x_values=machine_counts,
    )
    fig.add("interval_hours", [t / 3600.0 for t in intervals])
    fig.note("paper: ~3 hours at 64 machines")
    return fig


def test_young_interval(run_once):
    fig = run_once(run_experiment)
    print("\n" + fig.render())
    fig.save()
    hours = dict(zip(fig.x_values, fig.values_of("interval_hours")))
    # The paper's example: ~3 hours at 64 machines.
    assert 2.7 <= hours[64] <= 3.3
    # Monotone: more machines -> shorter intervals.
    values = fig.values_of("interval_hours")
    assert values == sorted(values, reverse=True)
    # And the interval dwarfs the modeled experiment runtimes, which is
    # the paper's argument for skipping snapshots during benchmarks.
    runtime = graphlab_runtime(64, netflix_workload(20))
    assert hours[64] * 3600.0 > 10.0 * runtime
