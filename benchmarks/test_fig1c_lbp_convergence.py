"""Fig. 1(c): loopy BP convergence — sync vs async vs dynamic async.

Residual versus sweeps on a web-spam-detection-like MRF. Paper claim:
async (in-place) beats sync (Pregel) per sweep, and dynamic async
(residual-prioritized, GraphLab) beats both.
"""

from repro.apps import make_lbp_update, synchronous_lbp_sweep, total_residual
from repro.bench import Figure
from repro.core import SequentialEngine
from repro.datasets import grid_2d

ROWS, COLS, LABELS = 14, 14, 3
SWEEPS = 8


def _fresh_graph():
    return grid_2d(ROWS, COLS, num_labels=LABELS, seed=11, smoothing=1.5)


def run_experiment():
    n = ROWS * COLS

    # Synchronous supersteps.
    graph, psi = _fresh_graph()
    sync_residuals = []
    for _ in range(SWEEPS):
        synchronous_lbp_sweep(graph, psi)
        sync_residuals.append(total_residual(graph, psi))

    # Asynchronous (in-place, fixed sweep order).
    graph, psi = _fresh_graph()
    update = make_lbp_update(psi, epsilon=float("inf"))  # no self-schedule
    engine = SequentialEngine(graph, update, scheduler="sweep")
    async_residuals = []
    for _ in range(SWEEPS):
        engine.run(initial=graph.vertices())
        async_residuals.append(total_residual(graph, psi))

    # Dynamic async (residual-prioritized), sampled every |V| updates.
    graph, psi = _fresh_graph()
    dynamic_update = make_lbp_update(psi, epsilon=1e-4)
    engine = SequentialEngine(
        graph, dynamic_update, scheduler="priority"
    )
    engine.max_updates = n
    dynamic_residuals = []
    for sweep in range(SWEEPS):
        result = engine.run(
            initial=graph.vertices() if sweep == 0 else ()
        )
        dynamic_residuals.append(total_residual(graph, psi))
        if result.converged and not engine.scheduler:
            # Converged early: flat-fill remaining sweeps.
            dynamic_residuals.extend(
                [dynamic_residuals[-1]] * (SWEEPS - len(dynamic_residuals))
            )
            break

    fig = Figure(
        figure_id="fig1c",
        title="Loopy BP convergence (residual vs sweeps)",
        x_label="sweep",
        x_values=list(range(1, SWEEPS + 1)),
    )
    fig.add("sync_pregel", sync_residuals)
    fig.add("async", async_residuals)
    fig.add("dynamic_async_graphlab", dynamic_residuals)
    fig.note(
        f"{ROWS}x{COLS} grid MRF, {LABELS} labels (paper: web-spam "
        "graph); residual = max message change if updated now"
    )
    return fig


def test_fig1c_dynamic_fastest(run_once):
    fig = run_once(run_experiment)
    print("\n" + fig.render())
    fig.save()
    sync = fig.values_of("sync_pregel")
    async_ = fig.values_of("async")
    dynamic = fig.values_of("dynamic_async_graphlab")
    # All converge.
    assert sync[-1] < sync[0]
    assert async_[-1] < async_[0]
    # Ordering at the last sweep: dynamic <= async <= sync (with slack
    # for the async/dynamic pair mid-run).
    assert async_[-1] <= sync[-1] * 1.05
    assert dynamic[-1] <= async_[-1] * 1.05
    # Dynamic is meaningfully ahead of sync well before the end.
    mid = SWEEPS // 2
    assert dynamic[mid] < sync[mid]
