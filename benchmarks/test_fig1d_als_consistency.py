"""Fig. 1(d): serializable vs non-serializable (racing) dynamic ALS.

The paper: "Non-serializable execution exhibits unstable convergence
behavior" on the Netflix problem, while the serializable execution
converges smoothly. We run dynamic ALS (a) serializably (edge
consistency) and (b) racing (vertex consistency on the threaded engine,
where neighbor reads are unprotected) and verify both the detected
serializability violations and the stability gap.
"""

import numpy as np

from repro.apps import initialize_factors, make_als_update, test_rmse
from repro.bench import Figure
from repro.core import Consistency, SequentialEngine, ThreadedEngine
from repro.datasets import synthetic_netflix

D = 4
CHECKPOINTS = 10
UPDATES_PER_CHECKPOINT = 150


def _error_curve(engine_factory, data):
    """Test-RMSE sampled every UPDATES_PER_CHECKPOINT updates."""
    errors = []
    engine = engine_factory()
    engine.max_updates = UPDATES_PER_CHECKPOINT
    initial = list(data.graph.vertices())
    for leg in range(CHECKPOINTS):
        # The first leg seeds every vertex; later legs continue from
        # the dynamically scheduled task set.
        engine.run(initial=initial if leg == 0 else ())
        errors.append(test_rmse(data.graph, data.test_ratings))
        if not engine.scheduler:
            errors.extend([errors[-1]] * (CHECKPOINTS - len(errors)))
            break
    return errors


def run_experiment():
    data = synthetic_netflix(
        num_users=150, num_movies=60, ratings_per_user=15, seed=21
    )
    als = make_als_update(d=D, epsilon=1e-3)

    # Serializable: sequential engine, edge consistency.
    initialize_factors(data.graph, D, seed=5)
    serial_errors = _error_curve(
        lambda: SequentialEngine(
            data.graph, als, consistency=Consistency.EDGE,
            scheduler="priority",
        ),
        data,
    )

    # Racing: threaded engine under the *vertex* consistency model —
    # neighbor factor reads are unprotected.
    initialize_factors(data.graph, D, seed=5)
    racing_errors = []
    trace_violations = 0
    for leg in range(CHECKPOINTS):
        engine = ThreadedEngine(
            data.graph,
            als,
            consistency=Consistency.VERTEX,
            scheduler="priority",
            num_workers=8,
            max_updates=UPDATES_PER_CHECKPOINT,
            trace=True,
        )
        result = engine.run(initial=data.graph.vertices())
        trace_violations += len(result.trace.violations())
        racing_errors.append(test_rmse(data.graph, data.test_ratings))

    fig = Figure(
        figure_id="fig1d",
        title="ALS consistency: serializable vs racing (test RMSE)",
        x_label="updates",
        x_values=[
            (i + 1) * UPDATES_PER_CHECKPOINT for i in range(CHECKPOINTS)
        ],
    )
    fig.add("serializable", serial_errors)
    fig.add("not_serializable", racing_errors)
    fig.note(
        f"racing run produced {trace_violations} detected "
        "serializability violations (vertex-consistency neighbor reads)"
    )
    fig.note(
        "Python object writes are atomic reference swaps, so races "
        "manifest as stale (Jacobi-style) reads slowing convergence; "
        "the paper's C++ in-place vector writes add torn reads and "
        "stronger oscillation (see EXPERIMENTS.md)"
    )
    return fig, trace_violations


def _instability(errors):
    """Total upward error movement after the first checkpoint."""
    return sum(
        max(0.0, errors[i + 1] - errors[i]) for i in range(1, len(errors) - 1)
    )


def test_fig1d_racing_is_not_serializable(run_once):
    fig, violations = run_once(run_experiment)
    print("\n" + fig.render())
    fig.save()
    serial = fig.values_of("serializable")
    racing = fig.values_of("not_serializable")
    # The serializable run converges and is near-monotone.
    assert serial[-1] <= serial[0]
    assert _instability(serial) <= 0.02
    # The racing run truly raced: overlapping conflicting scopes.
    assert violations > 0
    # Racing hurts: higher error on average and over the second half
    # of the run (per-checkpoint comparisons are thread-timing noisy).
    mid = len(serial) // 2
    assert sum(racing) / len(racing) > sum(serial) / len(serial)
    assert sum(racing[mid:]) > sum(serial[mid:])
