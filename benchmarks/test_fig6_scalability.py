"""Fig. 6: overall scalability, network utilization, Netflix d-sweep,
and the Netflix three-system comparison.

(a)/(b)/(c)/(d) are evaluated with the paper-scale cost models (the
inputs are 99M-200M edges; see DESIGN.md), cross-validated by executing
the chromatic engine end-to-end on a reduced Netflix instance and
checking real speedup and numerical agreement between the GraphLab,
Hadoop, and MPI implementations.
"""

import numpy as np

from repro.apps import initialize_factors, make_als_update, training_rmse
from repro.baselines import (
    graphlab_mbps_per_machine,
    graphlab_runtime,
    hadoop_runtime,
    mpi_runtime,
    ner_workload,
    netflix_workload,
    coseg_workload,
    run_hadoop_als,
    run_mpi_als,
    speedup_curve,
)
from repro.bench import Figure
from repro.core import Consistency, bipartite_coloring
from repro.datasets import synthetic_netflix
from repro.distributed import (
    ChromaticEngine,
    DistributedFileSystem,
    deploy,
    netflix_cost,
    netflix_sizes,
)
from repro.sim import Cluster

MACHINES = [4, 8, 16, 24, 32, 40, 48, 56, 64]


def run_fig6a_and_6b():
    workloads = {
        "coseg": coseg_workload(),
        "netflix": netflix_workload(20),
        "ner": ner_workload(),
    }
    fig_a = Figure(
        figure_id="fig6a",
        title="Speedup relative to 4 machines",
        x_label="machines",
        x_values=MACHINES,
    )
    fig_b = Figure(
        figure_id="fig6b",
        title="Average MB/s per machine",
        x_label="machines",
        x_values=MACHINES,
    )
    for name, wl in workloads.items():
        curve = speedup_curve(
            lambda m, wl=wl: graphlab_runtime(m, wl), MACHINES
        )
        fig_a.add(name, [curve[m] for m in MACHINES])
        fig_b.add(
            name, [graphlab_mbps_per_machine(m, wl) for m in MACHINES]
        )
    fig_a.note("paper-scale cost model; paper: CoSeg ~10x, Netflix "
               "moderate, NER ~3x at 64 machines")
    fig_b.note("paper: NER saturates above 100 MB/s beyond 16 machines")
    return fig_a, fig_b


def run_fig6c():
    fig = Figure(
        figure_id="fig6c",
        title="Netflix speedup vs computation intensity d",
        x_label="machines",
        x_values=MACHINES,
    )
    for d in (5, 20, 50, 100):
        wl = netflix_workload(d)
        curve = speedup_curve(
            lambda m, wl=wl: graphlab_runtime(m, wl), MACHINES
        )
        fig.add(f"d={d} ({wl.cycles_per_update/1e6:.1f}M cyc)",
                [curve[m] for m in MACHINES])
    fig.note("higher computation-to-communication ratio scales better")
    return fig


def run_fig6d():
    wl = netflix_workload(20)
    fig = Figure(
        figure_id="fig6d",
        title="Netflix runtime: GraphLab vs Hadoop vs MPI (seconds)",
        x_label="machines",
        x_values=MACHINES,
    )
    fig.add("hadoop", [hadoop_runtime(m, wl) for m in MACHINES])
    fig.add("graphlab", [graphlab_runtime(m, wl) for m in MACHINES])
    fig.add("mpi", [mpi_runtime(m, wl) for m in MACHINES])
    fig.note("paper: GraphLab 40-60x over Hadoop, comparable to MPI")
    return fig


def run_reduced_scale_validation():
    """Execute all three systems on a small Netflix instance."""
    d = 4
    data = synthetic_netflix(num_users=120, num_movies=40, seed=9)
    iterations = 3

    # GraphLab chromatic engine (real distributed execution).
    initialize_factors(data.graph, d, seed=1)
    dep = deploy(
        data.graph, 4, partitioner="hash", atoms_per_machine=4,
        sizes=netflix_sizes(d), skip_ingress_io=True,
    )
    engine = ChromaticEngine(
        dep.cluster,
        data.graph,
        make_als_update(d=d, dynamic=False),
        dep.stores,
        dep.owner,
        netflix_cost(d),
        netflix_sizes(d),
        consistency=Consistency.EDGE,
        coloring=bipartite_coloring(data.graph, side_fn=data.side_fn),
        max_sweeps=1,
    )
    # Static (non-self-scheduling) ALS: re-seed every sweep, exactly
    # like the BSP baselines' per-iteration recomputation.
    for _ in range(iterations):
        engine.run(initial=data.graph.vertices())
    graphlab_rmse = training_rmse(data.graph, store=_merged(engine))
    graphlab_runtime_s = dep.cluster.kernel.now

    # Hadoop (real MapReduce execution).
    cluster = Cluster(4)
    dfs = DistributedFileSystem(cluster, replication=1)
    hadoop = run_hadoop_als(
        cluster, dfs, data.graph, data.side_fn, d, iterations, seed=1
    )
    hadoop_rmse = training_rmse(
        data.graph, store=_value_store(data.graph, hadoop.values)
    )

    # MPI (real BSP execution).
    cluster = Cluster(4)
    mpi = run_mpi_als(
        cluster, data.graph, data.side_fn, d, iterations, seed=1
    )
    mpi_rmse = training_rmse(
        data.graph, store=_value_store(data.graph, mpi.values)
    )
    return (
        graphlab_rmse,
        hadoop_rmse,
        mpi_rmse,
        graphlab_runtime_s,
        hadoop.runtime,
        mpi.runtime,
    )


class _value_store:
    """Adapter: dict of vertex values + graph edges as a data store."""

    def __init__(self, graph, values):
        self._graph = graph
        self._values = values

    def vertex_data(self, v):
        return self._values[v]

    def edge_data(self, u, m):
        return self._graph.edge_data(u, m)


def _merged(engine):
    values = engine.gather_vertex_data()
    return _value_store(engine.graph, values)


def test_fig6a_scalability_shapes(run_once):
    fig_a, fig_b = run_once(run_fig6a_and_6b)
    print("\n" + fig_a.render())
    print("\n" + fig_b.render())
    fig_a.save()
    fig_b.save()
    at64 = {s.label: s.values[-1] for s in fig_a.series}
    # CoSeg scales best; NER worst with a plateau near 3x (paper).
    assert at64["coseg"] > at64["ner"]
    assert at64["netflix"] > at64["ner"]
    assert 2.0 <= at64["ner"] <= 4.5
    assert at64["coseg"] >= 7.0
    # 6(b): NER saturates >95 MB/s beyond 16 machines; others stay low.
    ner_mbps = fig_b.values_of("ner")
    for m, mbps in zip(MACHINES, ner_mbps):
        if m >= 16:
            assert mbps > 95.0
    assert max(fig_b.values_of("netflix")) < 80.0
    assert max(fig_b.values_of("coseg")) < 20.0
    # NER is the bandwidth hog at every cluster size.
    assert ner_mbps[-1] > fig_b.values_of("netflix")[-1]


def test_fig6c_intensity(run_once):
    fig = run_once(run_fig6c)
    print("\n" + fig.render())
    fig.save()
    finals = [s.values[-1] for s in fig.series]  # d=5,20,50,100 order
    assert finals == sorted(finals)  # monotone in d
    assert finals[-1] > 1.5 * finals[0]


def test_fig6d_system_comparison(run_once):
    fig = run_once(run_fig6d)
    print("\n" + fig.render())
    fig.save()
    hadoop = fig.values_of("hadoop")
    graphlab = fig.values_of("graphlab")
    mpi = fig.values_of("mpi")
    for h, g, p in zip(hadoop, graphlab, mpi):
        assert 20.0 <= h / g <= 90.0  # paper: 40-60x
        assert 0.6 <= g / p <= 1.6  # comparable to MPI


def test_fig6_reduced_scale_cross_validation(run_once):
    (gl_rmse, h_rmse, mpi_rmse, gl_t, h_t, mpi_t) = run_once(
        run_reduced_scale_validation
    )
    print(
        f"\nreduced-scale ALS agreement: graphlab={gl_rmse:.4f} "
        f"hadoop={h_rmse:.4f} mpi={mpi_rmse:.4f}; runtimes "
        f"graphlab={gl_t:.2f}s hadoop={h_t:.2f}s mpi={mpi_t:.2f}s"
    )
    # All three implementations solve the same problem.
    assert abs(gl_rmse - h_rmse) < 0.15
    assert abs(gl_rmse - mpi_rmse) < 0.15
    # And even at toy scale, Hadoop is far slower (job startup alone).
    assert h_t > 10.0 * gl_t
