"""Ablations of the paper's design choices (DESIGN.md Sec. 5).

The paper motivates three mechanisms without isolating them; these
benchmarks isolate each on the executing engines:

* **data versioning** (Sec. 4.1) — ghost pushes ship only *changed*
  data. Ablation: compare shipped bytes against re-sending the full
  boundary every color-step.
* **asynchronous change propagation** (Sec. 4.2.1) — the chromatic
  engine overlaps ghost pushes with compute inside a color-step.
  Ablation: flush only at the color barrier (huge batches, no overlap).
* **affinity-aware atom placement** (Sec. 4.1) — the atom index's
  placement pulls connected atoms together. Ablation: round-robin
  placement of the same atoms.
"""

from repro.bench import Figure
from repro.core import greedy_coloring
from repro.core.graph import DataGraph
from repro.datasets import mesh_3d
from repro.apps import make_lbp_update
from repro.distributed import (
    COSEG_SIZES,
    ChromaticEngine,
    LockingEngine,
    bfs_assignment,
    build_atoms,
    constant_cost,
    degree_cost,
    deploy,
)
from repro.distributed.graph_store import LocalGraphStore
from repro.distributed.ingress import ownership_from_placement


def _mesh(side=8, epsilon=0.0):
    graph, psi = mesh_3d(side, connectivity=6, seed=3)
    return graph, make_lbp_update(psi, epsilon=epsilon)


class _NaiveStore(LocalGraphStore):
    """Ablation store: re-ships the *entire* local boundary on every
    flush, as if the versioning system did not exist (Sec. 4.1's
    "eliminating the transmission of unchanged or constant data")."""

    def collect_dirty(self):
        from repro.core.consistency import edge_key, vertex_key

        for v in self.mirrors:
            self._dirty.add(vertex_key(v))
            for (a, b) in self.graph.adjacent_edges(v):
                if self.owner[a] != self.owner[b]:
                    self._dirty.add(edge_key(a, b))
        return super().collect_dirty()


def run_versioning_ablation():
    """Bytes shipped: version-filtered pushes vs full-boundary resend.

    Both variants execute the same adaptive workload (epsilon > 0, so
    changes die out as the computation converges); the ablated store
    re-dirties its whole boundary before every flush.
    """
    totals = {}
    for label, store_cls in (
        ("version_filtered", LocalGraphStore),
        ("naive_resend", _NaiveStore),
    ):
        graph, update = _mesh(epsilon=1e-3)
        dep = deploy(graph, 4, partitioner="grid", skip_ingress_io=True)
        stores = {
            m: store_cls(m, graph, dep.owner, sizes=COSEG_SIZES)
            for m in range(4)
        }
        engine = ChromaticEngine(
            dep.cluster, graph, update, stores, dep.owner,
            degree_cost(200000.0), COSEG_SIZES,
            coloring=greedy_coloring(graph), max_sweeps=12,
        )
        engine.run(initial=graph.vertices())
        totals[label] = sum(
            s.bytes_sent for s in dep.cluster.network.stats.values()
        )
    return totals["version_filtered"], totals["naive_resend"]


def run_async_propagation_ablation():
    """Chromatic flush_batch: overlapped pushes vs barrier-only flush."""
    results = {}
    for label, batch in (("async_overlap", 32), ("barrier_only", 10**9)):
        graph, update = _mesh()
        dep = deploy(graph, 4, partitioner="grid", skip_ingress_io=True)
        engine = ChromaticEngine(
            dep.cluster, graph, update, dep.stores, dep.owner,
            degree_cost(200000.0), COSEG_SIZES,
            coloring=greedy_coloring(graph),
            flush_batch=batch, max_sweeps=3,
        )
        run = engine.run(initial=graph.vertices())
        results[label] = run.runtime
    return results


def run_placement_ablation():
    """Atom placement: affinity-aware vs round-robin, measured in
    cross-machine scope chains (locking engine bytes)."""
    graph, update = _mesh()
    assignment = bfs_assignment(graph, 16)
    atoms, index = build_atoms(graph, assignment, 16, sizes=COSEG_SIZES)
    results = {}
    for label in ("affinity", "round_robin"):
        if label == "affinity":
            placement = index.place(4)
        else:
            placement = {a: a % 4 for a in range(16)}
        owner = ownership_from_placement(atoms, placement)
        dep = deploy(
            graph, 4, assignment=assignment, sizes=COSEG_SIZES,
            skip_ingress_io=True,
        )
        stores = {
            m: LocalGraphStore(m, graph, owner, sizes=COSEG_SIZES)
            for m in range(4)
        }
        engine = LockingEngine(
            dep.cluster, graph, update, stores, owner,
            degree_cost(200000.0), COSEG_SIZES,
            pipeline_length=32,
            max_updates=2 * graph.num_vertices,
        )
        run = engine.run(initial=graph.vertices())
        results[label] = (
            run.runtime,
            sum(run.bytes_sent_per_machine.values()),
        )
    return results


def test_ablation_versioning_saves_bytes(run_once):
    shipped, naive = run_once(run_versioning_ablation)
    fig = Figure(
        figure_id="ablation_versioning",
        title="Ghost traffic: version-filtered vs naive resend (bytes)",
        x_label="scheme",
        x_values=["version_filtered", "naive_resend"],
    ).add("bytes", [shipped, naive])
    print("\n" + fig.render())
    fig.save()
    # Versioning must ship strictly less than re-sending the boundary
    # every color-step ("eliminating the transmission of unchanged or
    # constant data", Sec. 4.1).
    assert shipped < naive


def test_ablation_async_propagation(run_once):
    results = run_once(run_async_propagation_ablation)
    fig = Figure(
        figure_id="ablation_async_flush",
        title="Chromatic engine: overlapped vs barrier-only ghost pushes",
        x_label="scheme",
        x_values=list(results),
    ).add("runtime_s", list(results.values()))
    print("\n" + fig.render())
    fig.save()
    # Overlapping communication with computation within a color-step
    # must not be slower than deferring everything to the barrier.
    assert results["async_overlap"] <= results["barrier_only"] * 1.05


def test_ablation_placement_affinity(run_once):
    results = run_once(run_placement_ablation)
    fig = Figure(
        figure_id="ablation_placement",
        title="Atom placement: affinity vs round-robin",
        x_label="scheme",
        x_values=list(results),
    )
    fig.add("runtime_s", [r[0] for r in results.values()])
    fig.add("bytes_sent", [r[1] for r in results.values()])
    print("\n" + fig.render())
    fig.save()
    # Affinity placement puts connected atoms together: it must not
    # ship more bytes than round-robin on a mesh.
    assert results["affinity"][1] <= results["round_robin"][1]
