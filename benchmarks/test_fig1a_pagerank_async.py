"""Fig. 1(a): async (GraphLab) vs sync (Pregel) PageRank convergence.

L1 error to the true PageRank vector versus work performed. The paper's
claim: asynchronous (in-place, Gauss-Seidel-style) execution converges
substantially faster than synchronous (Pregel superstep) execution at
equal update counts.
"""

from repro.apps import (
    exact_pagerank,
    initialize_ranks,
    jacobi_pagerank_sweep,
    l1_error,
    make_pagerank_update,
)
from repro.bench import Figure
from repro.core import SequentialEngine, SweepScheduler
from repro.datasets import power_law_web_graph

#: The Fig. 1a workload definition — also imported by
#: ``benchmarks.perf.bench_core`` so the real-runtime throughput rows in
#: ``BENCH_core.json`` measure exactly this graph.
NUM_PAGES = 1200
OUT_DEGREE = 4
SEED = 7
SWEEPS = 12


def run_experiment():
    graph = power_law_web_graph(NUM_PAGES, out_degree=OUT_DEGREE, seed=SEED)
    truth = exact_pagerank(graph)

    # Synchronous (Pregel): Jacobi sweeps, error sampled per sweep.
    sync_errors = []
    initialize_ranks(graph)
    for _ in range(SWEEPS):
        jacobi_pagerank_sweep(graph)
        sync_errors.append(l1_error(graph, truth))

    # Asynchronous (GraphLab): in-place Gauss-Seidel sweeps, sources
    # updated before the pages they link to (reverse insertion order on
    # a preferential-attachment graph), error sampled every |V| updates
    # so the x-axes align.
    async_errors = []
    initialize_ranks(graph)
    update = make_pagerank_update(epsilon=0.0, schedule="none")
    order = list(graph.vertices())[::-1]
    engine = SequentialEngine(graph, update, scheduler=SweepScheduler(order))
    for _ in range(SWEEPS):
        engine.scheduler.add_all(order)
        engine.run(initial=())
        async_errors.append(l1_error(graph, truth))

    fig = Figure(
        figure_id="fig1a",
        title="Async vs Sync PageRank (L1 error vs sweeps)",
        x_label="sweep",
        x_values=list(range(1, SWEEPS + 1)),
    )
    fig.add("sync_pregel", sync_errors)
    fig.add("async_graphlab", async_errors)
    fig.note(
        f"power-law web graph: {NUM_PAGES} pages (paper: 25M pages); "
        "equal updates per sweep for both systems"
    )
    return fig


def test_fig1a_async_beats_sync(run_once):
    fig = run_once(run_experiment)
    print("\n" + fig.render())
    fig.save()
    sync = fig.values_of("sync_pregel")
    async_ = fig.values_of("async_graphlab")
    # Both converge...
    assert sync[-1] < sync[0]
    assert async_[-1] < async_[0]
    # ...but async is ahead at every sweep, by a widening margin
    # (the paper's Fig. 1a gap).
    assert all(a <= s for a, s in zip(async_, sync))
    mid = SWEEPS // 2
    assert async_[mid] < 0.5 * sync[mid]
    assert async_[-1] < 0.1 * sync[-1]
