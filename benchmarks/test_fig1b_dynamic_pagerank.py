"""Fig. 1(b): update-count distribution of dynamic PageRank.

The paper runs dynamic (adaptive) PageRank to convergence and plots how
many updates each vertex needed: "the majority of the vertices required
only a single update while only about 3% of the vertices required more
than 10 updates".
"""

from collections import Counter

from repro.apps import initialize_ranks, make_pagerank_update
from repro.bench import Figure
from repro.core import SequentialEngine
from repro.datasets import power_law_web_graph

NUM_PAGES = 2000


def run_experiment():
    graph = power_law_web_graph(NUM_PAGES, out_degree=4, seed=3)
    initialize_ranks(graph)
    update = make_pagerank_update(epsilon=3e-4, schedule="out")
    engine = SequentialEngine(graph, update, scheduler="priority")
    result = engine.run(initial=graph.vertices())
    counts = Counter(result.updates_per_vertex.values())
    max_updates = max(counts)
    histogram = [counts.get(k, 0) for k in range(1, max_updates + 1)]
    fig = Figure(
        figure_id="fig1b",
        title="Dynamic PageRank: updates needed at convergence",
        x_label="updates",
        x_values=list(range(1, max_updates + 1)),
    )
    fig.add("num_vertices", histogram)
    single = counts.get(1, 0) / graph.num_vertices
    heavy = (
        sum(v for k, v in counts.items() if k > 10) / graph.num_vertices
    )
    fig.note(f"{single:.0%} of vertices converged in a single update "
             f"(paper: 51%); {heavy:.1%} needed more than 10 (paper: ~3%)")
    return fig, single, heavy, result


def test_fig1b_majority_single_update(run_once):
    fig, single, heavy, result = run_once(run_experiment)
    print("\n" + fig.render())
    fig.save()
    assert result.converged
    # The skew the paper reports: most vertices converge almost
    # immediately, a small tail needs many updates.
    assert single >= 0.40
    assert heavy <= 0.10
    histogram = fig.values_of("num_vertices")
    assert histogram[0] == max(histogram)  # mode at one update
    assert len(histogram) > 5  # a real tail exists
