"""Netflix-style movie recommendation on the simulated cluster.

End-to-end distributed GraphLab (paper Sec. 5.1): generate a synthetic
ratings matrix, over-partition it into atoms, load them onto a
simulated 8-machine EC2 deployment, and factorize with ALS on the
chromatic engine (the bipartite graph is 2-colorable, and ALS only
needs edge consistency).

Run:  python examples/netflix_recommender.py
"""

import numpy as np

from repro.apps import initialize_factors, make_als_update, test_rmse, training_rmse
from repro.core import Consistency, bipartite_coloring
from repro.datasets import synthetic_netflix
from repro.distributed import (
    ChromaticEngine,
    deploy,
    netflix_cost,
    netflix_sizes,
)

D = 8  # latent dimension (the paper sweeps 5..100 in Fig. 6c)
MACHINES = 8
ITERATIONS = 5


def main(
    num_users: int = 400,
    num_movies: int = 120,
    ratings_per_user: int = 20,
    iterations: int = ITERATIONS,
) -> None:
    data = synthetic_netflix(
        num_users=num_users,
        num_movies=num_movies,
        ratings_per_user=ratings_per_user,
        seed=7,
    )
    graph = data.graph
    initialize_factors(graph, D, seed=1)
    print(
        f"ratings graph: {data.num_users} users x {data.num_movies} "
        f"movies, {graph.num_edges} train ratings, "
        f"{len(data.test_ratings)} held out"
    )

    # Initialization phase (Fig. 5a): atoms on the DFS, placed by the
    # atom index, loaded in parallel with real simulated I/O cost.
    dep = deploy(
        graph,
        MACHINES,
        partitioner="hash",  # Table 2: Netflix uses a random partition
        atoms_per_machine=4,
        sizes=netflix_sizes(D),
    )
    print(
        f"deployed on {dep.cluster}: ingress took "
        f"{dep.ingress.load_seconds:.3f} simulated seconds"
    )

    engine = ChromaticEngine(
        dep.cluster,
        graph,
        make_als_update(d=D, dynamic=False),
        dep.stores,
        dep.owner,
        netflix_cost(D),
        netflix_sizes(D),
        consistency=Consistency.EDGE,
        coloring=bipartite_coloring(graph, side_fn=data.side_fn),
        max_sweeps=1,
    )
    for iteration in range(iterations):
        engine.run(initial=graph.vertices())
        values = engine.gather_vertex_data()
        for v, value in values.items():
            graph.set_vertex_data(v, value)
        print(
            f"iteration {iteration + 1}: "
            f"train RMSE {training_rmse(graph):.4f}  "
            f"test RMSE {test_rmse(graph, data.test_ratings):.4f}  "
            f"(simulated t={dep.cluster.kernel.now:.2f}s, "
            f"${dep.cluster.cost(dep.cluster.kernel.now):.4f})"
        )

    # Recommend: best unseen movie for one user.
    user = ("u", 0)
    seen = set(graph.neighbors(user))
    scores = {
        m: float(np.dot(graph.vertex_data(user), graph.vertex_data(("m", j))))
        for j in range(data.num_movies)
        if (m := ("m", j)) not in seen
    }
    best = max(scores, key=scores.get)
    print(f"top recommendation for user 0: movie {best[1]} "
          f"(predicted rating {scores[best]:.2f})")


if __name__ == "__main__":
    main()
