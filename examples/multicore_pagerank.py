"""Real multiprocess PageRank: the same program on 1..N OS processes.

Everything else in this repo *models* distributed execution on the
discrete-event simulator; this example *performs* it. The identical
update function (Alg. 1) runs on the single-threaded reference engine
and then on :class:`~repro.runtime.engine.RuntimeChromaticEngine` worker
processes — same atom-based placement as the simulated cluster, real
pipes, real barriers — and the final ranks are compared bit for bit,
which is the paper's portability thesis (Sec. 4) in one script.

Run:  python examples/multicore_pagerank.py
"""

import os

from repro.apps import make_pagerank_update
from repro.core import SequentialEngine, greedy_coloring
from repro.datasets import power_law_web_graph
from repro.runtime import (
    ColorSweepScheduler,
    RuntimeChromaticEngine,
    UpdateProgram,
)

SWEEPS = 12


def main(num_vertices: int = 1200, max_workers: int = 4) -> None:
    graph = power_law_web_graph(num_vertices, out_degree=4, seed=7)
    coloring = greedy_coloring(graph)
    print(
        f"web graph: {graph.num_vertices} pages, {graph.num_edges} links, "
        f"{len(set(coloring.values()))} colors, "
        f"{os.cpu_count()} CPU core(s) available"
    )

    # Round-robin sweeps (the paper's round-robin scheduler): every page
    # updates once per sweep, so all engines execute the same work.
    program = UpdateProgram(make_pagerank_update, kwargs={"schedule": "self"})
    cap = SWEEPS * graph.num_vertices

    reference = graph.copy()
    result = SequentialEngine(
        reference,
        make_pagerank_update(schedule="self"),
        scheduler=ColorSweepScheduler(coloring),
        max_updates=cap,
    ).run(initial=reference.vertices())
    print(f"sequential reference: {result.num_updates} updates")

    workers = 1
    while workers <= max_workers:
        copy = graph.copy()
        engine = RuntimeChromaticEngine(
            copy,
            program,
            num_workers=workers,
            transport="mp",
            coloring=coloring,
            max_sweeps=SWEEPS,
        )
        run = engine.run(initial=copy.vertices())
        identical = all(
            copy.vertex_data(v) == reference.vertex_data(v)
            for v in reference.vertices()
        )
        print(
            f"  {workers} worker process(es): {run.num_updates} updates, "
            f"{run.updates_per_sec:,.0f} updates/s "
            f"(launch {run.launch_seconds * 1e3:.0f} ms), "
            f"bit-identical to reference: {identical}"
        )
        workers *= 2


if __name__ == "__main__":
    main()
