"""Batch kernels: one PageRank program, interpreted and vectorized.

PR 1 made the scalar hot path as fast as a per-vertex Python interpreter
gets; this example shows the next gear. The graph is finalized with
**typed float64 columns** (`finalize(vertex_dtype=float, ...)`), so the
same `make_pagerank_update` program can run two ways:

* the scalar interpreter — one `Scope` rebind + Python update call per
  vertex (`use_kernel=False`);
* the batch kernel — every color-step of the sweep as a handful of
  numpy passes over the compiled CSR (`repro.core.kernels`).

Both are driven in identical chromatic order by `ColorSweepScheduler`,
and the kernel contract is *bit-identity*, not approximation: the final
ranks are compared exactly before the speedup is printed.

Run:  python examples/batch_pagerank.py
"""

import time

from repro.apps import make_pagerank_update
from repro.core import SequentialEngine, greedy_coloring
from repro.datasets import power_law_web_graph
from repro.runtime import ColorSweepScheduler

SWEEPS = 10


def main(num_vertices: int = 5000, sweeps: int = SWEEPS) -> None:
    graph = power_law_web_graph(num_vertices, out_degree=4, seed=7, typed=True)
    coloring = greedy_coloring(graph)
    cap = sweeps * graph.num_vertices
    print(
        f"web graph: {graph.num_vertices} pages, {graph.num_edges} links, "
        f"{len(set(coloring.values()))} colors, typed float64 columns, "
        f"{sweeps} round-robin sweeps"
    )

    results = {}
    for label, use_kernel in (("scalar interpreter", False),
                              ("batch kernel", True)):
        copy = graph.copy()
        engine = SequentialEngine(
            copy,
            make_pagerank_update(schedule="self"),
            scheduler=ColorSweepScheduler(coloring),
            max_updates=cap,
            use_kernel=use_kernel,
        )
        start = time.perf_counter()
        run = engine.run(initial=copy.vertices())
        elapsed = time.perf_counter() - start
        results[label] = (copy, elapsed)
        print(
            f"  {label}: {run.num_updates} updates in {elapsed:.3f}s "
            f"({run.num_updates / elapsed:,.0f} updates/s)"
        )

    scalar_graph, scalar_seconds = results["scalar interpreter"]
    batch_graph, batch_seconds = results["batch kernel"]
    identical = all(
        scalar_graph.vertex_data(v) == batch_graph.vertex_data(v)
        for v in scalar_graph.vertices()
    )
    print(
        f"bit-identical ranks: {identical}; measured speedup: "
        f"{scalar_seconds / batch_seconds:.1f}x"
    )


if __name__ == "__main__":
    main()
