"""ALS collaborative filtering on the pipelined locking engine.

The chromatic engine needs a coloring and runs in color-step barriers;
the **pipelined locking engine** (paper Sec. 4.2.2) is the general
case: dynamic priorities, any consistency model, distributed
readers-writer locks with a configurable window of in-flight scope
acquisitions so lock latency hides behind computation. This script
runs the paper's Fig. 1(d) workload — dynamic ALS on a Netflix-style
bipartite ratings graph, priorities = factor-change magnitudes — on
real worker OS processes under edge consistency, then shows the
pipelining effect by re-running with the window collapsed to 1.

Run:  python examples/locking_als.py
"""

from repro.apps.als import als_program, initialize_factors, training_rmse
from repro.datasets.netflix import synthetic_netflix
from repro.runtime import RuntimeLockingEngine

D = 5  #: latent factor dimension


def main(
    num_users: int = 120,
    num_movies: int = 40,
    ratings_per_user: int = 12,
    num_workers: int = 2,
) -> None:
    data = synthetic_netflix(
        num_users=num_users,
        num_movies=num_movies,
        ratings_per_user=ratings_per_user,
        d_true=3,
        seed=0,
    )
    graph = data.graph
    print(
        f"ratings graph: {data.num_users} users, {data.num_movies} movies, "
        f"{graph.num_edges} ratings"
    )
    program = als_program(D, epsilon=1e-3)
    results = {}
    for window in (64, 1):
        copy = graph.copy()
        initialize_factors(copy, D, seed=1)
        before = training_rmse(copy)
        run = RuntimeLockingEngine(
            copy,
            program,
            num_workers=num_workers,
            transport="mp",
            scheduler="priority",
            pipeline_window=window,
        ).run(initial=copy.vertices())
        results[window] = run
        print(
            f"  window={window:>2}: train RMSE {before:.3f} -> "
            f"{training_rmse(copy):.3f} in {run.num_updates} updates, "
            f"{run.rounds} rounds, {run.updates_per_sec:,.0f} updates/s "
            f"on {num_workers} worker process(es)"
        )
    pipelined, serial = results[64], results[1]
    if serial.exec_seconds > 0 and pipelined.exec_seconds > 0:
        print(
            f"pipelining win (window 64 vs 1): "
            f"{serial.rounds / max(pipelined.rounds, 1):.1f}x fewer "
            f"barriers"
        )


if __name__ == "__main__":
    main()
