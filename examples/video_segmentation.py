"""Video co-segmentation with the pipelined locking engine.

The paper's CoSeg application (Sec. 5.2): loopy BP over a
spatio-temporal super-pixel grid with residual-prioritized dynamic
scheduling on the locking engine, while a Gaussian appearance model is
maintained by the sync operation. The paper calls this the application
no other framework could express (dynamic priorities + background
aggregation at once).

Run:  python examples/video_segmentation.py
"""

from repro.apps import (
    ascii_frame,
    prepare_coseg,
    segmentation_accuracy,
    segmentation_labels,
)
from repro.core import Consistency
from repro.datasets import synthetic_video
from repro.distributed import (
    COSEG_SIZES,
    LockingEngine,
    coseg_cost,
    deploy,
    frame_assignment,
)

MACHINES = 4


def main(frames: int = 8, rows: int = 10, cols: int = 18) -> None:
    video = synthetic_video(
        frames=frames, rows=rows, cols=cols, num_labels=3, seed=3
    )
    graph = video.graph
    print(
        f"video: {video.frames} frames of {video.rows}x{video.cols} "
        f"super-pixels -> {graph.num_vertices} vertices, "
        f"{graph.num_edges} edges"
    )

    setup = prepare_coseg(
        video, seed=3, sync_interval_updates=graph.num_vertices
    )
    # CoSeg's optimal partition: contiguous frame blocks per machine.
    assignment = frame_assignment(
        graph, MACHINES * 2, video.frame_fn, video.frames
    )
    dep = deploy(
        graph, MACHINES, assignment=assignment, sizes=COSEG_SIZES
    )

    engine = LockingEngine(
        dep.cluster,
        graph,
        setup["update_fn"],
        dep.stores,
        dep.owner,
        coseg_cost(video.num_labels),
        COSEG_SIZES,
        consistency=Consistency.EDGE,
        scheduler="priority",  # residual BP priorities [11]
        pipeline_length=100,
        syncs=[setup["sync"]],
        initial_globals=setup["initial_globals"],
        max_updates=6 * graph.num_vertices,
    )
    result = engine.run(initial=graph.vertices())
    values = engine.gather_vertex_data()
    labels = segmentation_labels(graph, values=values)
    accuracy = segmentation_accuracy(labels, video.truth, video.num_labels)

    print(
        f"locking engine: {result.num_updates} updates in "
        f"{result.runtime:.3f} simulated seconds on {MACHINES} machines"
    )
    print(f"segmentation accuracy (best label permutation): {accuracy:.1%}")
    print("\nframe 0 segmentation:")
    print(ascii_frame(labels, 0, video.rows, video.cols))
    print(f"\nframe {video.frames - 1} segmentation (objects moved):")
    print(ascii_frame(labels, video.frames - 1, video.rows, video.cols))


if __name__ == "__main__":
    main()
