"""Named Entity Recognition with CoEM on the chromatic engine.

The paper's NER application (Sec. 5.3): propagate type distributions
between noun-phrases and contexts on the bipartite co-occurrence graph,
starting from a handful of seeds — then print the Fig. 7(b)-style
"top words per type" table.

Run:  python examples/ner_extraction.py
"""

from repro.apps import (
    labeling_accuracy,
    make_coem_update,
    phrase_labels,
    top_words_per_type,
)
from repro.core import Consistency, bipartite_coloring
from repro.datasets import synthetic_ner
from repro.distributed import NER_SIZES, ChromaticEngine, deploy, ner_cost

MACHINES = 4


def main(
    phrases_per_type: int = 30,
    num_contexts: int = 120,
    edges_per_phrase: int = 12,
) -> None:
    data = synthetic_ner(
        phrases_per_type=phrases_per_type,
        num_contexts=num_contexts,
        edges_per_phrase=edges_per_phrase,
        seed=1,
    )
    graph = data.graph
    print(
        f"corpus graph: {graph.num_vertices} vertices "
        f"({len(data.truth)} noun-phrases), {graph.num_edges} "
        f"co-occurrence edges, {len(data.seeds)} seeds"
    )

    # Table 2: NER uses the chromatic engine on a random partition —
    # the paper's communication worst case.
    dep = deploy(graph, MACHINES, partitioner="hash", sizes=NER_SIZES)
    engine = ChromaticEngine(
        dep.cluster,
        graph,
        make_coem_update(data.seeds),
        dep.stores,
        dep.owner,
        ner_cost(),
        NER_SIZES,
        consistency=Consistency.EDGE,
        coloring=bipartite_coloring(graph, side_fn=data.side_fn),
        max_sweeps=30,
    )
    result = engine.run(initial=graph.vertices())
    values = engine.gather_vertex_data()
    labels = phrase_labels(graph, values=values)
    accuracy = labeling_accuracy(labels, data.truth)
    print(
        f"chromatic engine: {result.num_updates} updates, "
        f"{result.sweeps} sweeps, {result.runtime:.3f} simulated s; "
        f"accuracy {accuracy:.1%}"
    )
    mbps = result.mean_mbps_per_machine
    print(f"network: {mbps:.2f} MB/s per machine (NER is the paper's "
          "bandwidth-bound workload)")

    print("\ntop noun-phrases per type (cf. paper Fig. 7b):")
    top = top_words_per_type(graph, data.types, k=4, values=values)
    for type_name, words in top.items():
        rendered = ", ".join(f"{w} ({s:.2f})" for w, s in words)
        print(f"  {type_name:>10}: {rendered}")


if __name__ == "__main__":
    main()
