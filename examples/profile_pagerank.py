"""Profile a real multiprocess PageRank run with runtime telemetry.

ISSUE 7's front door: run the chromatic engine on OS-process workers
with ``telemetry=True``, then show everything the observability layer
produces from one run — the merged span timeline written as JSONL
(``pagerank.trace.jsonl``), a Chrome trace-event file you can open at
``chrome://tracing`` or https://ui.perfetto.dev (``pagerank.chrome.json``),
and the printed phase-breakdown report: where each worker's wall time
went (compute / ghost apply / serialization / pipe idle), load
imbalance, and coordinator overheads.

Telemetry observes but never steers: the ranks with tracing on are
bit-identical to a run with it off (tier-1 property tests pin this).

Run:  python examples/profile_pagerank.py
"""

import tempfile
from pathlib import Path
from typing import Optional

from repro.apps import make_pagerank_update
from repro.datasets import power_law_web_graph
from repro.obs import (
    chrome_trace,
    format_report,
    summarize,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.runtime import RuntimeChromaticEngine, UpdateProgram


def main(
    num_vertices: int = 1500,
    num_workers: int = 4,
    out_dir: Optional[str] = None,
) -> None:
    graph = power_law_web_graph(num_vertices, out_degree=4, seed=7)
    program = UpdateProgram(make_pagerank_update, kwargs={"epsilon": 1e-4})
    print(
        f"tracing pagerank: {graph.num_vertices} pages, "
        f"{graph.num_edges} links, {num_workers} worker processes"
    )

    engine = RuntimeChromaticEngine(
        graph,
        program,
        num_workers=num_workers,
        transport="mp",
        telemetry=True,
    )
    result = engine.run(initial=graph.vertices())
    telemetry = result.telemetry
    print(
        f"run: {result.num_updates} updates in {result.wall_seconds:.3f}s "
        f"({'converged' if result.converged else 'capped'}), "
        f"{len(telemetry.events)} spans on "
        f"{telemetry.num_workers + 1} tracks"
    )

    root = Path(
        out_dir
        if out_dir is not None
        else tempfile.mkdtemp(prefix="repro-trace-")
    )
    trace_path = root / "pagerank.trace.jsonl"
    chrome_path = root / "pagerank.chrome.json"
    write_jsonl(telemetry, trace_path)
    obj = chrome_trace(telemetry)
    problems = validate_chrome_trace(obj)
    assert not problems, problems
    write_chrome_trace(telemetry, chrome_path)
    print(f"wrote {trace_path}")
    print(f"wrote {chrome_path} (load in chrome://tracing or perfetto)")

    print()
    print(format_report(summarize(telemetry)))


if __name__ == "__main__":
    main(out_dir=".")
