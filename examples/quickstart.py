"""Quickstart: dynamic PageRank with the GraphLab abstraction.

Builds a small power-law web graph, runs the adaptive PageRank update
function (Alg. 1 of the paper) on the reference engine with a priority
scheduler, and compares against the exact ranks.

Run:  python examples/quickstart.py
"""

from repro.apps import exact_pagerank, l1_error, make_pagerank_update
from repro.core import SequentialEngine
from repro.datasets import power_law_web_graph


def main(num_vertices: int = 500) -> None:
    graph = power_law_web_graph(num_vertices=num_vertices, out_degree=4, seed=42)
    print(f"web graph: {graph.num_vertices} pages, {graph.num_edges} links")

    # The update function: recompute my rank from my in-neighbors and
    # schedule my dependents only if I changed materially.
    pagerank = make_pagerank_update(alpha=0.15, epsilon=1e-5)

    engine = SequentialEngine(graph, pagerank, scheduler="priority")
    result = engine.run(initial=graph.vertices())

    truth = exact_pagerank(graph)
    print(f"updates executed:  {result.num_updates}")
    print(f"converged:         {result.converged}")
    print(f"L1 error vs exact: {l1_error(graph, truth):.2e}")

    # The signature of dynamic computation (paper Fig. 1b): most pages
    # needed very few updates, a heavy tail needed many.
    counts = sorted(result.updates_per_vertex.values())
    single = sum(1 for c in counts if c == 1) / len(counts)
    print(f"pages updated once: {single:.0%}   max updates: {counts[-1]}")

    top = sorted(truth, key=truth.get, reverse=True)[:5]
    print("top pages:", [(v, round(graph.vertex_data(v), 4)) for v in top])


if __name__ == "__main__":
    main()
