"""Fault tolerance: Chandy-Lamport snapshots and recovery.

Runs loopy BP on the 3-D mesh with an asynchronous (Alg. 5) snapshot
taken mid-run, kills a machine, restores every machine's state from the
snapshot journals on the DFS, and finishes the computation — the
workflow of paper Sec. 4.3. Also prints Young's optimal checkpoint
interval for the paper's deployment.

Run:  python examples/fault_tolerance_demo.py
"""

from repro.apps import make_lbp_update, total_residual
from repro.core import Consistency
from repro.datasets import mesh_3d
from repro.distributed import (
    COSEG_SIZES,
    LockingEngine,
    degree_cost,
    deploy,
    run_recovery,
    young_checkpoint_interval,
)
from repro.distributed.snapshot import SECONDS_PER_YEAR

MACHINES = 4


def main(side: int = 6) -> None:
    interval = young_checkpoint_interval(120.0, SECONDS_PER_YEAR, 64)
    print(
        "Young's optimal checkpoint interval (2-min checkpoint, 1-year "
        f"per-machine MTBF, 64 machines): {interval / 3600.0:.2f} hours "
        "(paper: ~3 hours)"
    )

    graph, psi = mesh_3d(side=side, connectivity=26, seed=9)
    update = make_lbp_update(psi, epsilon=1e-3)
    dep = deploy(graph, MACHINES, partitioner="grid", sizes=COSEG_SIZES)

    budget = 4 * graph.num_vertices
    engine = LockingEngine(
        dep.cluster,
        graph,
        update,
        dep.stores,
        dep.owner,
        degree_cost(50000.0),
        COSEG_SIZES,
        consistency=Consistency.EDGE,
        pipeline_length=50,
        max_updates=budget,
        dfs=dep.dfs,
        snapshot_plan=[(budget // 3, "async")],
    )
    result = engine.run(initial=graph.vertices())
    snap = result.snapshots[0]
    print(
        f"run 1: {result.num_updates} updates; async snapshot covered "
        f"{graph.num_vertices} vertices in "
        f"{snap.end - snap.start:.4f} simulated s "
        f"({snap.bytes_written / 1e3:.0f} KB journaled) without "
        "stopping execution"
    )

    # Disaster: machine 2 dies; its in-memory partition is gone.
    victim = dep.cluster.machine(2)
    victim.kill()
    for v in dep.stores[2].owned_vertices:
        dep.stores[2].set_vertex_data(v, None)
    print("machine 2 killed; its partition wiped")

    # Recovery: bring the machine back, restore everyone from the last
    # snapshot, reschedule, and finish.
    victim.restore()
    info = run_recovery(dep.dfs, 0, dep.stores)
    print(
        f"recovered {info['machines']} machine journals in "
        f"{info['seconds']:.4f} simulated s; "
        f"{len(info['reschedule'])} vertices rescheduled"
    )

    engine2 = LockingEngine(
        dep.cluster,
        graph,
        update,
        dep.stores,
        dep.owner,
        degree_cost(50000.0),
        COSEG_SIZES,
        consistency=Consistency.EDGE,
        pipeline_length=50,
        max_updates=budget,
    )
    result2 = engine2.run(initial=sorted(info["reschedule"], key=repr))
    values = engine2.gather_vertex_data()
    for v, value in values.items():
        graph.set_vertex_data(v, value)
    print(
        f"run 2 (post-recovery): {result2.num_updates} updates, "
        f"converged={result2.converged}; final residual "
        f"{total_residual(graph, psi):.2e}"
    )


if __name__ == "__main__":
    main()
