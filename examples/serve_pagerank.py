"""Online serving: the resident graph answering reads while it heals.

Stands a :class:`repro.serve.GraphService` on a random web-ish graph —
the runtime engine launches once and stays parked between requests,
keeping the finalized graph resident in its workers — then exercises
the serving loop end to end: a warm-started incremental PageRank
converges the ranks, clients read them with version tags, a burst of
writes perturbs a few vertices, and the residual-scheduled delta
program re-converges the neighborhood in the background while reads
keep flowing. Finishes with the service's own latency percentiles and
a check that the drained graph healed back to the exact fixed point.

Run:  python examples/serve_pagerank.py
"""

import random

from repro.apps import exact_pagerank, l1_error
from repro.runtime import named_program
from repro.serve import GraphService, InprocClient, build_serving_graph


def main(num_vertices: int = 200, num_workers: int = 2, seed: int = 7) -> None:
    graph = build_serving_graph(num_vertices, seed=seed)
    truth = exact_pagerank(graph)
    service = GraphService(
        graph,
        named_program("pagerank_delta", epsilon=1e-6),
        num_workers=num_workers,
        transport="inproc",
        touch="self",
    )
    service.start()
    client = InprocClient(service)
    print(
        f"serving {graph.num_vertices} vertices on {num_workers} resident "
        "workers"
    )

    # Reads are version-tagged, consistent snapshots.
    top = max(truth, key=truth.get)
    reply = client.read(top, scope=True)
    print(
        f"top page {reply.vertex}: rank={reply.value:.5f} "
        f"(version {reply.version}, {len(reply.neighbors)} in-neighbors)"
    )

    # Writes perturb ranks; the delta program heals them in background.
    rng = random.Random(seed)
    for _ in range(8):
        vertex = rng.randrange(num_vertices)
        ack = client.write(vertex, rng.uniform(0.5, 2.0) / num_vertices)
        print(f"wrote {ack.vertex} (scheduled {ack.scheduled} updates)")
    after = client.read(top)
    print(f"read-your-storm: rank={after.value:.5f} v{after.version}")

    stats = service.stats()
    result = service.close()
    for op in ("read", "write"):
        row = stats[op]
        print(
            f"{op:5s} latency: n={row['count']} p50={row['p50_ms']:.2f}ms "
            f"p99={row['p99_ms']:.2f}ms"
        )
    print(
        f"drained: {result.num_updates} background updates, "
        f"healed L1 vs exact = {l1_error(graph, truth):.2e}"
    )


if __name__ == "__main__":
    main()
