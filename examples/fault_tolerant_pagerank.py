"""PageRank that survives losing a worker process mid-run.

The paper's fault-tolerance pitch (Sec. 4.3): snapshot the graph at
intervals, and when a machine dies, respawn it and roll the cluster
back to the last complete snapshot instead of restarting the job. This
example performs it on real OS processes:

1. run PageRank cleanly on :class:`RuntimeChromaticEngine` workers;
2. run it again with snapshots on and a deterministic kill scheduled
   mid-run (the same injection the ``REPRO_FAULT`` environment knob
   drives) — the engine respawns the dead worker, restores everyone
   from the snapshot journals, and finishes *inside the same run()*;
3. compare the two rank vectors bit for bit.

The locking engine recovers the same way (with fixed-point equivalence
rather than bit-identity, since its execution order is only
conflict-serializable); see ``tests/test_runtime_checkpoint.py``.

Run:  python examples/fault_tolerant_pagerank.py
"""

from repro.apps import make_pagerank_update
from repro.datasets import power_law_web_graph
from repro.runtime import RuntimeChromaticEngine, UpdateProgram

SWEEPS = 40
KILL_WORKER = 1
KILL_ROUND = 6


def main(num_vertices: int = 600, num_workers: int = 2) -> None:
    program = UpdateProgram(
        make_pagerank_update, kwargs={"schedule": "out", "epsilon": 1e-4}
    )

    clean = power_law_web_graph(num_vertices, out_degree=4, seed=7)
    result = RuntimeChromaticEngine(
        clean,
        program,
        num_workers=num_workers,
        transport="mp",
        max_sweeps=SWEEPS,
    ).run(initial=clean.vertices())
    print(
        f"clean run: {result.num_updates} updates over {result.sweeps} "
        f"sweeps on {num_workers} worker process(es)"
    )

    faulty = power_law_web_graph(num_vertices, out_degree=4, seed=7)
    engine = RuntimeChromaticEngine(
        faulty,
        program,
        num_workers=num_workers,
        transport="mp",
        max_sweeps=SWEEPS,
        snapshot_every=2,  # snapshot every 2 sweeps ("auto": Young's Eq. 3)
    )
    # Deterministic fault injection: hard-kill the worker process at the
    # start of round KILL_ROUND (env twin: REPRO_FAULT="1:6").
    engine.transport.schedule_kill(KILL_WORKER, KILL_ROUND)
    result = engine.run(initial=faulty.vertices())
    print(
        f"faulty run: worker {KILL_WORKER} killed at round {KILL_ROUND}, "
        f"recovered {result.extra['recoveries']} time(s) in "
        f"{result.extra['recovery_seconds'] * 1e3:.0f} ms from "
        f"{result.extra['snapshots']} snapshot(s) "
        f"({result.extra['snapshot_bytes'] / 1024:.0f} KiB journaled)"
    )

    identical = all(
        clean.vertex_data(v) == faulty.vertex_data(v)
        for v in clean.vertices()
    )
    print(f"ranks bit-identical to the unkilled run: {identical}")
    if not identical:
        raise SystemExit("recovery diverged from the clean run")


if __name__ == "__main__":
    main()
