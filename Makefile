# Convenience entry points; all commands assume the repo root as cwd.

PY := PYTHONPATH=src python

.PHONY: test perf bench

# Tier-1 verify: unit + figure-reproduction suites (perf tests skipped).
test:
	$(PY) -m pytest -x -q

# Hot-path perf checks (non-tier-1, selected by the perf marker).
perf:
	$(PY) -m pytest -m perf benchmarks/perf -q

# Record core throughput to BENCH_core.json. Refuses to overwrite an
# existing file from a dirty working tree so the perf trajectory stays
# reproducible from committed states (pass FORCE=1 to override).
bench:
	$(PY) -m benchmarks.perf.bench_core $(if $(FORCE),--force,)
