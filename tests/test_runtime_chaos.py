"""Seeded chaos harness for the runtime (the PR 8 tentpole's court of
last resort).

Every test here builds a *randomized but reproducible* fault schedule —
``random.Random`` seeded from ``REPRO_CHAOS_SEED`` (default 1337) plus
the case index — injects it through the ``REPRO_FAULT`` grammar, and
runs a PageRank workload to completion. The verdict is binary:

* the run finishes and the answer matches a clean reference exactly
  (chromatic engine: bit-identity) or to fixed-point tolerance
  (locking engine), or
* the run raises a structured :class:`WorkerFailure`.

**Never a hang, never a silently wrong answer.** Anything else — a
different exception, a wrong result — fails the case with the seed and
the schedule echoed, so `REPRO_CHAOS_SEED=<seed> pytest <this test>`
replays it bit-for-bit (schedules only randomize the *fault plan*; the
workload itself is deterministic).

Coverage: 100 inproc schedules (25 cases x 2 engines x both SHM-plane
modes, the deterministic backends where every mode — kill, hang, stall,
corrupt_reply, crash_mid_snapshot, corrupt_snapshot — replays exactly),
mp smoke schedules under tight liveness deadlines, where hangs are real
SIGSTOPs and detection rides the heartbeat protocol, plus the PR 9
network pool: loopback-socket schedules drawing ``drop_conn`` /
``partition`` / ``reset_mid_frame`` / ``delay`` (and the wire-agnostic
``stall`` / ``corrupt_reply``) through the framed TCP layer, and
real-process TCP schedules mixing process kills with link faults.

When ``REPRO_CHAOS_ARTIFACTS`` names a directory (the CI chaos lane
sets it), every failing case dumps its schedule, its snapshot directory,
and — when telemetry was on — a Chrome trace there for upload.
"""

import os
import random
import shutil

import pytest

from repro.apps.pagerank import make_pagerank_update
from repro.datasets.webgraph import power_law_web_graph
from repro.obs import write_chrome_trace
from repro.runtime import (
    FAULT_ENV,
    LoopbackTcpTransport,
    MpTransport,
    RuntimeChromaticEngine,
    RuntimeLockingEngine,
    TcpTransport,
    UpdateProgram,
    WorkerFailure,
)

#: Base seed for every schedule; override to replay a CI failure.
BASE_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1337"))
#: When set (CI chaos lane), failing cases dump schedule + snapshot dir
#: + Chrome trace here.
ARTIFACTS = os.environ.get("REPRO_CHAOS_ARTIFACTS")

#: Kill-biased mode pool: kills are the paper's headline failure and
#: exercise respawn + rollback; the rarer modes each pin one corner of
#: the liveness/integrity layer.
MODES = ["kill"] * 4 + [
    "hang",
    "stall",
    "corrupt_reply",
    "crash_mid_snapshot",
    "corrupt_snapshot",
]

#: Network pool for the socket backends (PR 9): link drops dominate;
#: partitions draw 1–6 eaten reconnect attempts so schedules land on
#: both sides of the retry budget (transparent heal vs. structured
#: failure + rollback); stall/corrupt_reply ride along because they are
#: wire-agnostic and keep heartbeats/integrity honest over frames.
NETWORK_POOL = ["drop_conn"] * 3 + [
    "partition",
    "partition",
    "reset_mid_frame",
    "delay",
    "stall",
    "corrupt_reply",
]

PAGERANK = UpdateProgram(
    make_pagerank_update, kwargs={"schedule": "out", "epsilon": 1e-4}
)


@pytest.fixture(autouse=True)
def _clear_fault_env(monkeypatch):
    monkeypatch.delenv(FAULT_ENV, raising=False)


def web():
    return power_law_web_graph(48, out_degree=3, seed=11)


def ranks(graph):
    return {v: graph.vertex_data(v) for v in graph.vertices()}


def make_schedule(rng):
    """One random 1–2 entry ``REPRO_FAULT`` schedule over workers 0/1."""
    workers = rng.sample([0, 1], k=rng.randint(1, 2))
    parts = []
    for w in workers:
        mode = rng.choice(MODES)
        if mode == "kill":
            when = "launch" if rng.random() < 0.1 else str(rng.randint(0, 8))
            parts.append(f"{w}:{when}")
        elif mode == "stall":
            seconds = round(rng.uniform(0.01, 0.05), 3)
            parts.append(f"{w}:{rng.randint(0, 8)}:stall={seconds}")
        elif mode == "corrupt_snapshot":
            # Never snapshot 0: garbling the baseline leaves nothing to
            # fall back to, which is a legitimate SnapshotError, not a
            # recoverable schedule (pinned by its own unit test).
            parts.append(f"{w}:{rng.randint(1, 3)}:corrupt_snapshot")
        else:
            parts.append(f"{w}:{rng.randint(0, 8)}:{mode}")
    return ",".join(parts)


def make_network_schedule(rng):
    """One random 1–2 entry schedule drawn from the network pool."""
    workers = rng.sample([0, 1], k=rng.randint(1, 2))
    parts = []
    for w in workers:
        mode = rng.choice(NETWORK_POOL)
        when = rng.randint(0, 8)
        if mode == "partition":
            parts.append(f"{w}:{when}:partition={rng.randint(1, 6)}")
        elif mode == "delay":
            parts.append(f"{w}:{when}:delay={rng.randint(1, 30)}")
        elif mode == "stall":
            seconds = round(rng.uniform(0.01, 0.05), 3)
            parts.append(f"{w}:{when}:stall={seconds}")
        else:
            parts.append(f"{w}:{when}:{mode}")
    return ",".join(parts)


#: Clean-run references, computed once per (engine, use_plane) with no
#: fault schedule in the environment.
_REFERENCE = {}


def reference(engine_cls, use_plane):
    key = (engine_cls.__name__, use_plane)
    if key not in _REFERENCE:
        assert FAULT_ENV not in os.environ
        g = web()
        kw = dict(num_workers=2, transport="inproc", use_plane=use_plane)
        if engine_cls is RuntimeChromaticEngine:
            kw["max_sweeps"] = 100
        engine_cls(g, PAGERANK, **kw).run(initial=g.vertices())
        _REFERENCE[key] = ranks(g)
    return _REFERENCE[key]


def dump_artifacts(label, schedule, snapshot_dir, engine):
    if not ARTIFACTS:
        return
    dest = os.path.join(ARTIFACTS, label)
    os.makedirs(dest, exist_ok=True)
    with open(os.path.join(dest, "schedule.txt"), "w") as fh:
        fh.write(f"REPRO_CHAOS_SEED={BASE_SEED}\nschedule={schedule}\n")
    if snapshot_dir and os.path.isdir(snapshot_dir):
        shutil.copytree(
            snapshot_dir, os.path.join(dest, "snapshots"), dirs_exist_ok=True
        )
    collector = getattr(engine, "_collector", None)
    if collector is not None:
        try:
            telemetry = collector.finalize(
                engine.transport.clock_offsets, {"engine": "chaos"}
            )
            write_chrome_trace(
                telemetry, os.path.join(dest, "trace.json")
            )
        except Exception:
            pass  # best-effort: the schedule + snapshots still land


def run_case(engine_cls, exact, label, schedule, tmp_path, monkeypatch,
             transport="inproc", use_plane=True, snapshot_mode="sync"):
    """Run one schedule; the only acceptable outcomes are a verified
    answer or a structured WorkerFailure.

    ``transport`` may be a backend name or a zero-arg factory; a factory
    is called *after* ``REPRO_FAULT`` lands in the environment so socket
    transports pick the schedule up at construction."""
    ref = reference(engine_cls, use_plane if transport == "inproc" else True)
    monkeypatch.setenv(FAULT_ENV, schedule)
    if callable(transport):
        transport = transport()
    g = web()
    kw = dict(
        num_workers=2,
        transport=transport,
        snapshot_every=2,
        max_recoveries=4,
        recovery_backoff=0.0,
        snapshot_dir=str(tmp_path),
        telemetry=bool(ARTIFACTS),
    )
    if transport == "inproc":
        kw["use_plane"] = use_plane
    if engine_cls is RuntimeChromaticEngine:
        kw["max_sweeps"] = 100
    else:
        kw["snapshot_mode"] = snapshot_mode
    engine = engine_cls(g, PAGERANK, **kw)
    context = (
        f"REPRO_CHAOS_SEED={BASE_SEED} case={label} schedule={schedule!r}"
    )
    try:
        result = engine.run(initial=g.vertices())
    except WorkerFailure:
        return  # structured failure: an accepted chaos outcome
    except Exception as exc:
        dump_artifacts(label, schedule, str(tmp_path), engine)
        raise AssertionError(
            f"{context}: unexpected {type(exc).__name__}: {exc}"
        ) from exc
    got = ranks(g)
    try:
        if exact:
            assert got == ref, "chromatic answer not bit-identical"
        else:
            assert result.converged
            for v, rank in ref.items():
                assert got[v] == pytest.approx(rank, abs=1e-3)
    except AssertionError as exc:
        dump_artifacts(label, schedule, str(tmp_path), engine)
        raise AssertionError(f"{context}: {exc}") from exc


class TestChaosInproc:
    """100 seeded schedules on the deterministic backend: 25 cases x
    2 engines x both data-plane modes."""

    @pytest.mark.parametrize("use_plane", [True, False])
    @pytest.mark.parametrize("case", range(25))
    def test_chromatic(self, case, use_plane, tmp_path, monkeypatch):
        label = f"chromatic-{case}-plane{int(use_plane)}"
        rng = random.Random(f"{BASE_SEED}:{label}")
        run_case(
            RuntimeChromaticEngine, True, label, make_schedule(rng),
            tmp_path, monkeypatch, use_plane=use_plane,
        )

    @pytest.mark.parametrize("use_plane", [True, False])
    @pytest.mark.parametrize("case", range(25))
    def test_locking(self, case, use_plane, tmp_path, monkeypatch):
        label = f"locking-{case}-plane{int(use_plane)}"
        rng = random.Random(f"{BASE_SEED}:{label}")
        snapshot_mode = rng.choice(["sync", "async"])
        run_case(
            RuntimeLockingEngine, False, label, make_schedule(rng),
            tmp_path, monkeypatch, use_plane=use_plane,
            snapshot_mode=snapshot_mode,
        )


class TestChaosMp:
    """Real processes under tight liveness deadlines: hangs are real
    SIGSTOPs, detection rides the heartbeat protocol, and the run must
    still end in a verified answer or a structured failure — never a
    120-second pipe wait."""

    @pytest.mark.parametrize("case", range(4))
    def test_chromatic_mp(self, case, tmp_path, monkeypatch):
        label = f"mp-{case}"
        rng = random.Random(f"{BASE_SEED}:{label}")
        # Restrict to process-level modes; the wire/disk modes are
        # covered deterministically above.
        mode = rng.choice(["kill", "hang", "stall", "kill"])
        worker = rng.randint(0, 1)
        when = rng.randint(0, 6)
        if mode == "stall":
            schedule = f"{worker}:{when}:stall={round(rng.uniform(0.3, 0.8), 2)}"
        elif mode == "hang":
            schedule = f"{worker}:{when}:hang"
        else:
            schedule = f"{worker}:{when}"
        ref = reference(RuntimeChromaticEngine, True)
        monkeypatch.setenv(FAULT_ENV, schedule)
        transport = MpTransport(
            2,
            reply_timeout=60.0,
            heartbeat_interval=0.05,
            heartbeat_timeout=1.0,
        )
        g = web()
        engine = RuntimeChromaticEngine(
            g, PAGERANK, num_workers=2, transport=transport,
            max_sweeps=100, snapshot_every=2, max_recoveries=4,
            recovery_backoff=0.0, snapshot_dir=str(tmp_path),
            telemetry=bool(ARTIFACTS),
        )
        context = (
            f"REPRO_CHAOS_SEED={BASE_SEED} case={label} "
            f"schedule={schedule!r}"
        )
        try:
            engine.run(initial=g.vertices())
        except WorkerFailure:
            return
        except Exception as exc:
            dump_artifacts(label, schedule, str(tmp_path), engine)
            raise AssertionError(
                f"{context}: unexpected {type(exc).__name__}: {exc}"
            ) from exc
        try:
            assert ranks(g) == ref, "chromatic answer not bit-identical"
        except AssertionError as exc:
            dump_artifacts(label, schedule, str(tmp_path), engine)
            raise AssertionError(f"{context}: {exc}") from exc


class TestChaosTcpLoopback:
    """Network faults through the framed socket layer, on the
    thread-backed loopback double where every schedule replays exactly:
    drops and torn frames must heal inside the retry budget, partitions
    past it must surface as one structured WorkerFailure that the
    snapshot/recovery path in ``run()`` turns into a respawned,
    rolled-back, *verified* completion."""

    @staticmethod
    def _transport():
        return LoopbackTcpTransport(
            2,
            reply_timeout=60.0,
            heartbeat_interval=0.02,
            heartbeat_timeout=1.0,
            retry_budget=4,
        )

    @pytest.mark.parametrize("case", range(12))
    def test_chromatic(self, case, tmp_path, monkeypatch):
        label = f"tcp-chromatic-{case}"
        rng = random.Random(f"{BASE_SEED}:{label}")
        run_case(
            RuntimeChromaticEngine, True, label,
            make_network_schedule(rng), tmp_path, monkeypatch,
            transport=self._transport,
        )

    @pytest.mark.parametrize("case", range(12))
    def test_locking(self, case, tmp_path, monkeypatch):
        label = f"tcp-locking-{case}"
        rng = random.Random(f"{BASE_SEED}:{label}")
        snapshot_mode = rng.choice(["sync", "async"])
        run_case(
            RuntimeLockingEngine, False, label,
            make_network_schedule(rng), tmp_path, monkeypatch,
            transport=self._transport, snapshot_mode=snapshot_mode,
        )


class TestChaosTcpReal:
    """Real worker processes over localhost TCP: process kills and link
    faults drawn from one combined pool, under tight liveness deadlines
    so dead links and dead processes are both detected in test time."""

    POOL = ["kill", "hang", "drop_conn", "partition", "reset_mid_frame"]

    @pytest.mark.parametrize("case", range(4))
    def test_chromatic_tcp(self, case, tmp_path, monkeypatch):
        label = f"tcp-real-{case}"
        rng = random.Random(f"{BASE_SEED}:{label}")
        mode = rng.choice(self.POOL)
        worker = rng.randint(0, 1)
        when = rng.randint(0, 6)
        if mode == "kill":
            schedule = f"{worker}:{when}"
        elif mode == "partition":
            schedule = f"{worker}:{when}:partition={rng.randint(1, 6)}"
        else:
            schedule = f"{worker}:{when}:{mode}"
        run_case(
            RuntimeChromaticEngine, True, label, schedule,
            tmp_path, monkeypatch,
            transport=lambda: TcpTransport(
                2,
                reply_timeout=60.0,
                heartbeat_interval=0.05,
                heartbeat_timeout=1.0,
                retry_budget=4,
            ),
        )


def test_schedule_generator_is_reproducible():
    """Same seed, same schedules — the property the failure-replay
    instructions depend on."""
    first = [
        make_schedule(random.Random(f"{BASE_SEED}:{i}")) for i in range(25)
    ]
    second = [
        make_schedule(random.Random(f"{BASE_SEED}:{i}")) for i in range(25)
    ]
    assert first == second


def test_harness_covers_at_least_100_schedules():
    """The acceptance bar: >=100 seeded fault schedules across engines,
    transports, and SHM modes, drawn from the combined process +
    network pools."""
    inproc = 25 * 2 * 2  # cases x engines x plane modes
    mp = 4
    tcp_loopback = 12 * 2  # network-pool cases x engines
    tcp_real = 4
    assert inproc + mp + tcp_loopback + tcp_real >= 100
