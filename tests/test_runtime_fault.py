"""Fault injection and failure plumbing on the runtime transports.

Satellites of the fault-tolerance PR (paper Sec. 4.3): one structured
:class:`WorkerFailure` shape for every raise site, the deterministic
kill schedules (``schedule_kill`` / the ``REPRO_FAULT`` environment
knob) on both backends, shutdown idempotence after a failed launch (no
double-released shm segments), and Young's checkpoint-interval helper.
Recovery itself — snapshots, respawn, rollback — is exercised in
``tests/test_runtime_checkpoint.py``.
"""

import doctest
import glob
import os
import time

import pytest

from repro.errors import EngineError, FaultSpecError
from repro.runtime import (
    FAULT_ENV,
    FaultSpec,
    InprocTransport,
    MpTransport,
    RuntimeChromaticEngine,
    WorkerFailure,
    parse_fault_plan,
)
from repro.runtime.plane import shm_available

from tests.helpers import grid_graph

#: The CI fault lane exports a REPRO_FAULT kill schedule for the whole
#: job. Captured at import, before the autouse fixture below clears it:
#: every test here stays deterministic, and the ambient-recovery test
#: replays the lane's schedule explicitly.
_AMBIENT_PLAN = os.environ.get(FAULT_ENV)


@pytest.fixture(autouse=True)
def _clear_fault_env(monkeypatch):
    monkeypatch.delenv(FAULT_ENV, raising=False)


def flood_max(scope):
    best = scope.data
    for u in scope.neighbors:
        best = max(best, scope.neighbor(u))
    if best != scope.data:
        scope.data = best
        return [(u, best) for u in scope.neighbors]


def exploding(scope):
    raise RuntimeError(f"boom at vertex {scope.vertex}")


class TestWorkerFailureShape:
    """Satellite: one structured exception for every failure mode."""

    def test_attributes_and_message(self):
        exc = WorkerFailure(
            3, "it died", last_command="step", phase="reply"
        )
        assert exc.worker_id == 3
        assert exc.detail == "it died"
        assert exc.last_command == "step"
        assert exc.phase == "reply"
        assert "worker 3 failed" in str(exc)
        assert "'step'" in str(exc)
        assert "'reply'" in str(exc)
        assert "it died" in str(exc)
        assert isinstance(exc, EngineError)

    def test_worker_exception_is_structured(self):
        g = grid_graph(3, 3)
        engine = RuntimeChromaticEngine(
            g, exploding, num_workers=2, transport="inproc"
        )
        with pytest.raises(WorkerFailure) as info:
            engine.run(initial=g.vertices())
        exc = info.value
        assert exc.worker_id in (0, 1)
        assert exc.last_command == "step"
        assert exc.phase == "reply"
        assert "boom at vertex" in exc.detail


class TestFaultPlan:
    def test_parse_rounds_and_launch(self):
        plan = parse_fault_plan(" 1:3, 0:launch ,2:0")
        assert {w: spec.when for w, spec in plan.items()} == {
            1: 3, 0: "launch", 2: 0
        }
        assert all(spec.mode == "kill" for spec in plan.values())

    def test_parse_modes_and_args(self):
        plan = parse_fault_plan(
            "0:2:hang,1:3:stall=0.5,2:1:corrupt_reply,"
            "3:0:corrupt_snapshot,4:5:crash_mid_snapshot"
        )
        assert plan[0] == FaultSpec(when=2, mode="hang")
        assert plan[1] == FaultSpec(when=3, mode="stall", arg=0.5)
        assert plan[2].mode == "corrupt_reply"
        assert plan[3].mode == "corrupt_snapshot"
        assert plan[4] == FaultSpec(when=5, mode="crash_mid_snapshot")

    def test_parse_empty(self):
        assert parse_fault_plan(None) == {}
        assert parse_fault_plan("") == {}

    @pytest.mark.parametrize("bad", ["1", "x:3", "1:soon", "1:3.5"])
    def test_parse_malformed(self, bad):
        with pytest.raises(EngineError):
            parse_fault_plan(bad)

    @pytest.mark.parametrize(
        "bad",
        [
            "1",                      # no when
            "x:3",                    # bad worker id
            "-1:3",                   # negative worker id
            "1:soon",                 # unknown round token
            "1:3.5",                  # fractional round
            "1:3:melt",               # unknown mode
            "1:3:stall",              # stall without seconds
            "1:3:stall=soon",         # non-numeric arg
            "1:3:hang=2",             # arg on a mode that takes none
            "1:launch:hang",          # only kill can fire at launch
            "1:3,1:5",                # duplicate schedule
        ],
    )
    def test_malformed_raises_valueerror_naming_fragment(self, bad):
        """Satellite: every malformed fragment raises a ValueError (and
        an EngineError) whose message quotes the fragment itself."""
        with pytest.raises(ValueError) as info:
            parse_fault_plan(bad)
        assert isinstance(info.value, FaultSpecError)
        assert isinstance(info.value, EngineError)
        offending = bad.split(",")[-1]
        assert repr(offending) in str(info.value)

    def test_duplicate_schedule_rejected(self):
        with pytest.raises(FaultSpecError) as info:
            parse_fault_plan("0:1,0:2")
        assert "duplicate" in str(info.value)
        assert "worker 0" in str(info.value)

    def test_env_seeds_plan_within_range(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "1:4,7:2")
        transport = InprocTransport(2)
        # Entry for worker 7 is ignored: one schedule can drive a whole
        # test run over transports of different sizes.
        assert transport._fault_plan == {1: FaultSpec(when=4)}

    def test_corrupt_snapshot_entries_skip_transport(self, monkeypatch):
        # Disk faults belong to the CheckpointManager; the transport
        # must not treat the snapshot id as a round number.
        monkeypatch.setenv(FAULT_ENV, "0:1:corrupt_snapshot,1:4")
        transport = InprocTransport(2)
        assert transport._fault_plan == {1: FaultSpec(when=4)}

    def test_schedule_kill_validates(self):
        transport = InprocTransport(2)
        with pytest.raises(EngineError):
            transport.schedule_kill(5, 1)
        with pytest.raises(EngineError):
            transport.schedule_kill(0, "soon")

    def test_schedule_fault_validates(self):
        transport = InprocTransport(2)
        with pytest.raises(FaultSpecError):
            transport.schedule_fault(0, 1, mode="melt")
        with pytest.raises(FaultSpecError):
            transport.schedule_fault(0, 1, mode="stall")  # needs arg
        with pytest.raises(FaultSpecError):
            transport.schedule_fault(0, "launch", mode="hang")
        with pytest.raises(FaultSpecError):
            transport.schedule_fault(0, 1, mode="corrupt_snapshot")
        transport.schedule_fault(1, 2, mode="stall", arg=0.01)
        assert transport._fault_plan[1].arg == 0.01


class TestInjectedKills:
    def test_inproc_round_kill_without_snapshots(self):
        g = grid_graph(4, 4)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport="inproc"
        )
        engine.transport.schedule_kill(1, 2)
        with pytest.raises(WorkerFailure) as info:
            engine.run(initial=g.vertices())
        assert info.value.worker_id == 1
        assert info.value.phase == "reply"
        assert "injected fault" in info.value.detail

    def test_env_knob_drives_engine(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "0:1")
        g = grid_graph(4, 4)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport="inproc"
        )
        with pytest.raises(WorkerFailure) as info:
            engine.run(initial=g.vertices())
        assert info.value.worker_id == 0

    def test_inproc_launch_kill(self):
        transport = InprocTransport(2)
        transport.schedule_kill(0, "launch")
        g = grid_graph(3, 3)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport=transport
        )
        with pytest.raises(WorkerFailure) as info:
            engine.run(initial=g.vertices())
        assert info.value.worker_id == 0
        assert info.value.phase == "launch"
        assert info.value.last_command == "launch"

    def test_mp_launch_kill(self):
        transport = MpTransport(2)
        transport.schedule_kill(1, "launch")
        g = grid_graph(3, 3)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport=transport
        )
        with pytest.raises(WorkerFailure) as info:
            engine.run(initial=g.vertices())
        assert info.value.worker_id == 1
        assert info.value.phase == "launch"

    def test_mp_round_kill(self):
        transport = MpTransport(2)
        transport.schedule_kill(0, 1)
        g = grid_graph(4, 4)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport=transport
        )
        with pytest.raises(WorkerFailure) as info:
            engine.run(initial=g.vertices())
        assert info.value.worker_id == 0
        # The kill surfaces either as a broken pipe at the next send or
        # as a dead process while awaiting the reply — both structured.
        assert info.value.phase in ("send", "reply")


class TestAdaptiveDeadline:
    """Tentpole: the per-round reply deadline tracks an EMA of observed
    round durations instead of the fixed two-minute timeout."""

    def test_deadline_tracks_ema_between_floor_and_cap(self):
        transport = MpTransport(
            2, reply_timeout=120.0, deadline_floor=30.0, deadline_slack=8.0
        )
        # No history yet (launch included): the historical hard cap.
        assert transport.reply_deadline() == 120.0
        transport._observe_round(0.01)
        # Fast rounds are floor-clamped — early noise can't shrink the
        # deadline into false-kill territory.
        assert transport.reply_deadline() == 30.0
        transport._round_ema = 10.0
        # Slow histories earn proportionally long deadlines...
        assert transport.reply_deadline() == 80.0
        transport._round_ema = 1000.0
        # ...but never beyond the hard cap.
        assert transport.reply_deadline() == 120.0

    def test_ema_blend(self):
        transport = MpTransport(2)
        transport._observe_round(1.0)
        assert transport._round_ema == 1.0
        transport._observe_round(2.0)
        assert abs(transport._round_ema - 1.2) < 1e-12


class TestLiveness:
    """Tentpole: a hung worker is declared dead in seconds via missed
    progress heartbeats; a slow-but-alive worker never is."""

    def test_mp_hang_detected_quickly(self):
        transport = MpTransport(
            2, heartbeat_interval=0.05, heartbeat_timeout=0.8
        )
        transport.schedule_fault(1, 0, mode="hang")
        g = grid_graph(4, 4)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport=transport
        )
        t0 = time.monotonic()
        with pytest.raises(WorkerFailure) as info:
            engine.run(initial=g.vertices())
        elapsed = time.monotonic() - t0
        assert info.value.worker_id == 1
        assert "hung" in info.value.detail
        assert "heartbeat" in info.value.detail
        # Without heartbeats this would sit out the full reply_timeout
        # (120s); with them the hang surfaces in about heartbeat_timeout.
        assert elapsed < 10.0
        assert transport.last_fault_fired_at is not None

    def test_mp_hang_recovery_matches_clean_run(self):
        g_clean = grid_graph(4, 4)
        clean = RuntimeChromaticEngine(
            g_clean, flood_max, num_workers=2, transport="inproc"
        )
        clean.run(initial=g_clean.vertices())
        transport = MpTransport(
            2, heartbeat_interval=0.05, heartbeat_timeout=0.8
        )
        transport.schedule_fault(1, 2, mode="hang")
        g = grid_graph(4, 4)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport=transport,
            snapshot_every=1, max_recoveries=1, recovery_backoff=0.0,
        )
        result = engine.run(initial=g.vertices())
        assert result.converged
        assert result.extra["recoveries"] == 1
        assert all(
            g.vertex_data(v) == g_clean.vertex_data(v)
            for v in g.vertices()
        )

    def test_mp_stall_is_slow_not_dead(self):
        # The stall (1.2s) dwarfs heartbeat_timeout (0.4s), but the
        # heartbeat pump keeps beating through a sleep — only a genuine
        # freeze goes silent. No false kill.
        transport = MpTransport(
            2, heartbeat_interval=0.05, heartbeat_timeout=0.4
        )
        transport.schedule_fault(0, 1, mode="stall", arg=1.2)
        g = grid_graph(4, 4)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport=transport
        )
        result = engine.run(initial=g.vertices())
        assert result.converged
        assert transport.heartbeats_received > 0

    def test_mp_corrupt_reply_is_structured(self):
        transport = MpTransport(2)
        transport.schedule_fault(1, 1, mode="corrupt_reply")
        g = grid_graph(4, 4)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport=transport
        )
        with pytest.raises(WorkerFailure) as info:
            engine.run(initial=g.vertices())
        assert info.value.worker_id == 1
        assert "corrupt reply" in info.value.detail

    def test_inproc_hang_and_corrupt_reply_deterministic(self):
        for mode, needle in (
            ("hang", "hung"),
            ("corrupt_reply", "corrupt reply"),
        ):
            transport = InprocTransport(2)
            transport.schedule_fault(1, 1, mode=mode)
            g = grid_graph(4, 4)
            engine = RuntimeChromaticEngine(
                g, flood_max, num_workers=2, transport=transport
            )
            with pytest.raises(WorkerFailure) as info:
                engine.run(initial=g.vertices())
            assert info.value.worker_id == 1
            assert needle in info.value.detail

    def test_inproc_crash_mid_snapshot_recovers_from_previous(self):
        # A multi-sweep workload so a real checkpoint round happens
        # (flood_max on a uniform grid converges before the cadence is
        # ever due).
        from repro.apps.pagerank import make_pagerank_update
        from repro.datasets.webgraph import power_law_web_graph
        from repro.runtime import UpdateProgram

        program = UpdateProgram(
            make_pagerank_update,
            kwargs={"schedule": "out", "epsilon": 1e-4},
        )
        transport = InprocTransport(2)
        transport.schedule_fault(0, 0, mode="crash_mid_snapshot")
        g = power_law_web_graph(60, out_degree=3, seed=11)
        engine = RuntimeChromaticEngine(
            g, program, num_workers=2, transport=transport,
            max_sweeps=100, snapshot_every=1, max_recoveries=1,
            recovery_backoff=0.0,
        )
        result = engine.run(initial=g.vertices())
        # The worker died mid-checkpoint; the aborted snapshot never got
        # its COMPLETE marker, so recovery fell back to the previous one
        # and the run still finished.
        assert result.extra["recoveries"] == 1
        clean_g = power_law_web_graph(60, out_degree=3, seed=11)
        RuntimeChromaticEngine(
            clean_g, program, num_workers=2, transport="inproc",
            max_sweeps=100,
        ).run(initial=clean_g.vertices())
        assert all(
            g.vertex_data(v) == clean_g.vertex_data(v)
            for v in g.vertices()
        )


class TestHangKillReleasesResources:
    """Satellite: recovery/shutdown after a hang-kill releases the shm
    segment and both pipe ends — the PR 6 leak regression, extended to
    the hung (SIGSTOP → straight SIGKILL) path."""

    @pytest.mark.skipif(
        not shm_available() or not os.path.isdir("/dev/shm"),
        reason="POSIX shared memory unavailable",
    )
    def test_hang_recover_then_shutdown_releases_everything(self):
        before = set(glob.glob("/dev/shm/repro-plane-*"))
        transport = MpTransport(
            2, heartbeat_interval=0.05, heartbeat_timeout=0.8
        )
        transport.schedule_fault(1, 1, mode="hang")
        g = grid_graph(4, 4)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport=transport,
            snapshot_every=1, max_recoveries=1, recovery_backoff=0.0,
        )
        result = engine.run(initial=g.vertices())
        assert result.extra["recoveries"] == 1
        # run() shut the transport down; again must be a no-op.
        transport.shutdown()
        assert set(glob.glob("/dev/shm/repro-plane-*")) <= before
        assert all(conn.closed for conn in transport._conns)
        assert transport._hung == set()
        assert all(not _proc_is_alive(p) for p in transport._procs)


def _proc_is_alive(proc):
    try:
        return proc.is_alive()
    except ValueError:  # handle already closed — certainly not alive
        return False


class TestShutdownAfterFailedLaunch:
    """Satellite bugfix: shutdown after a failed launch is idempotent
    and never double-releases the data plane."""

    def _leaked_segments(self):
        return glob.glob("/dev/shm/repro-plane-*")

    def test_inproc_double_shutdown(self):
        transport = InprocTransport(2)
        transport.schedule_kill(0, "launch")
        g = grid_graph(3, 3)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport=transport
        )
        with pytest.raises(WorkerFailure):
            engine.run(initial=g.vertices())
        # run() already shut the transport down in its finally; both of
        # these must be no-ops, not double releases.
        transport.shutdown()
        transport.shutdown()
        with pytest.raises(EngineError):
            transport.round([("step", {}), ("step", {})])

    @pytest.mark.skipif(
        not shm_available() or not os.path.isdir("/dev/shm"),
        reason="POSIX shared memory unavailable",
    )
    def test_mp_failed_launch_releases_shm_once(self):
        before = set(self._leaked_segments())
        transport = MpTransport(2)
        transport.schedule_kill(1, "launch")
        g = grid_graph(3, 3)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport=transport
        )
        with pytest.raises(WorkerFailure):
            engine.run(initial=g.vertices())
        transport.shutdown()
        transport.shutdown()
        assert set(self._leaked_segments()) <= before

    def test_shutdown_never_launched(self):
        transport = MpTransport(2)
        transport.shutdown()
        transport.shutdown()


class TestRecoverValidation:
    def test_recover_before_launch(self):
        transport = InprocTransport(2)
        with pytest.raises(EngineError):
            transport.recover(0, b"")

    def test_recover_after_shutdown(self):
        g = grid_graph(2, 2)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport="inproc"
        )
        engine.run(initial=g.vertices())  # run() shuts the transport down
        with pytest.raises(EngineError):
            engine.transport.recover(0, b"")

    def test_recover_bad_worker_id(self):
        g = grid_graph(2, 2)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport="inproc"
        )
        transport = engine.transport
        try:
            transport.launch(engine._encoded_inits())
            with pytest.raises(EngineError):
                transport.recover(9, b"")
        finally:
            transport.shutdown()


class TestAmbientFaultRecovery:
    """The CI fault lane's schedule, replayed against a snapshotting
    engine: whatever round-kills the lane exported must be survivable."""

    def test_recovers_under_lane_schedule(self):
        from repro.apps.pagerank import make_pagerank_update
        from repro.datasets.webgraph import power_law_web_graph
        from repro.runtime import UpdateProgram

        plan = parse_fault_plan(_AMBIENT_PLAN or "1:3")
        kills = {
            w: spec.when
            for w, spec in plan.items()
            if spec.mode == "kill" and isinstance(spec.when, int)
            and 0 <= w < 2
        }
        assert kills, "fault lane must schedule at least one round kill"
        program = UpdateProgram(
            make_pagerank_update,
            kwargs={"schedule": "out", "epsilon": 1e-4},
        )
        clean = power_law_web_graph(60, out_degree=3, seed=11)
        RuntimeChromaticEngine(
            clean, program, num_workers=2, transport="inproc",
            max_sweeps=100,
        ).run(initial=clean.vertices())
        faulty = power_law_web_graph(60, out_degree=3, seed=11)
        engine = RuntimeChromaticEngine(
            faulty, program, num_workers=2, transport="inproc",
            max_sweeps=100, snapshot_every=2,
            max_recoveries=len(kills), recovery_backoff=0.0,
        )
        for w, when in kills.items():
            engine.transport.schedule_kill(w, when)
        result = engine.run(initial=faulty.vertices())
        assert result.extra["recoveries"] == len(kills)
        assert all(
            clean.vertex_data(v) == faulty.vertex_data(v)
            for v in clean.vertices()
        )


class TestSuggestedInterval:
    def test_paper_example_is_three_hours(self):
        from repro.distributed.snapshot import suggested_interval

        hours = suggested_interval(64) / 3600.0
        assert round(hours, 1) == 3.0
        # Accepts anything with a num_workers attribute.
        transport = InprocTransport(64)
        assert suggested_interval(transport) == suggested_interval(64)

    def test_doctests(self):
        import repro.distributed.snapshot as snap

        failures, _tests = doctest.testmod(snap)
        assert failures == 0
