"""Fault injection and failure plumbing on the runtime transports.

Satellites of the fault-tolerance PR (paper Sec. 4.3): one structured
:class:`WorkerFailure` shape for every raise site, the deterministic
kill schedules (``schedule_kill`` / the ``REPRO_FAULT`` environment
knob) on both backends, shutdown idempotence after a failed launch (no
double-released shm segments), and Young's checkpoint-interval helper.
Recovery itself — snapshots, respawn, rollback — is exercised in
``tests/test_runtime_checkpoint.py``.
"""

import doctest
import glob
import os

import pytest

from repro.errors import EngineError
from repro.runtime import (
    FAULT_ENV,
    InprocTransport,
    MpTransport,
    RuntimeChromaticEngine,
    WorkerFailure,
    parse_fault_plan,
)
from repro.runtime.plane import shm_available

from tests.helpers import grid_graph

#: The CI fault lane exports a REPRO_FAULT kill schedule for the whole
#: job. Captured at import, before the autouse fixture below clears it:
#: every test here stays deterministic, and the ambient-recovery test
#: replays the lane's schedule explicitly.
_AMBIENT_PLAN = os.environ.get(FAULT_ENV)


@pytest.fixture(autouse=True)
def _clear_fault_env(monkeypatch):
    monkeypatch.delenv(FAULT_ENV, raising=False)


def flood_max(scope):
    best = scope.data
    for u in scope.neighbors:
        best = max(best, scope.neighbor(u))
    if best != scope.data:
        scope.data = best
        return [(u, best) for u in scope.neighbors]


def exploding(scope):
    raise RuntimeError(f"boom at vertex {scope.vertex}")


class TestWorkerFailureShape:
    """Satellite: one structured exception for every failure mode."""

    def test_attributes_and_message(self):
        exc = WorkerFailure(
            3, "it died", last_command="step", phase="reply"
        )
        assert exc.worker_id == 3
        assert exc.detail == "it died"
        assert exc.last_command == "step"
        assert exc.phase == "reply"
        assert "worker 3 failed" in str(exc)
        assert "'step'" in str(exc)
        assert "'reply'" in str(exc)
        assert "it died" in str(exc)
        assert isinstance(exc, EngineError)

    def test_worker_exception_is_structured(self):
        g = grid_graph(3, 3)
        engine = RuntimeChromaticEngine(
            g, exploding, num_workers=2, transport="inproc"
        )
        with pytest.raises(WorkerFailure) as info:
            engine.run(initial=g.vertices())
        exc = info.value
        assert exc.worker_id in (0, 1)
        assert exc.last_command == "step"
        assert exc.phase == "reply"
        assert "boom at vertex" in exc.detail


class TestFaultPlan:
    def test_parse_rounds_and_launch(self):
        plan = parse_fault_plan(" 1:3, 0:launch ,2:0")
        assert plan == {1: 3, 0: "launch", 2: 0}

    def test_parse_empty(self):
        assert parse_fault_plan(None) == {}
        assert parse_fault_plan("") == {}

    @pytest.mark.parametrize("bad", ["1", "x:3", "1:soon", "1:3.5"])
    def test_parse_malformed(self, bad):
        with pytest.raises(EngineError):
            parse_fault_plan(bad)

    def test_env_seeds_plan_within_range(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "1:4,7:2")
        transport = InprocTransport(2)
        # Entry for worker 7 is ignored: one schedule can drive a whole
        # test run over transports of different sizes.
        assert transport._fault_plan == {1: 4}

    def test_schedule_kill_validates(self):
        transport = InprocTransport(2)
        with pytest.raises(EngineError):
            transport.schedule_kill(5, 1)
        with pytest.raises(EngineError):
            transport.schedule_kill(0, "soon")


class TestInjectedKills:
    def test_inproc_round_kill_without_snapshots(self):
        g = grid_graph(4, 4)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport="inproc"
        )
        engine.transport.schedule_kill(1, 2)
        with pytest.raises(WorkerFailure) as info:
            engine.run(initial=g.vertices())
        assert info.value.worker_id == 1
        assert info.value.phase == "reply"
        assert "injected fault" in info.value.detail

    def test_env_knob_drives_engine(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "0:1")
        g = grid_graph(4, 4)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport="inproc"
        )
        with pytest.raises(WorkerFailure) as info:
            engine.run(initial=g.vertices())
        assert info.value.worker_id == 0

    def test_inproc_launch_kill(self):
        transport = InprocTransport(2)
        transport.schedule_kill(0, "launch")
        g = grid_graph(3, 3)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport=transport
        )
        with pytest.raises(WorkerFailure) as info:
            engine.run(initial=g.vertices())
        assert info.value.worker_id == 0
        assert info.value.phase == "launch"
        assert info.value.last_command == "launch"

    def test_mp_launch_kill(self):
        transport = MpTransport(2)
        transport.schedule_kill(1, "launch")
        g = grid_graph(3, 3)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport=transport
        )
        with pytest.raises(WorkerFailure) as info:
            engine.run(initial=g.vertices())
        assert info.value.worker_id == 1
        assert info.value.phase == "launch"

    def test_mp_round_kill(self):
        transport = MpTransport(2)
        transport.schedule_kill(0, 1)
        g = grid_graph(4, 4)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport=transport
        )
        with pytest.raises(WorkerFailure) as info:
            engine.run(initial=g.vertices())
        assert info.value.worker_id == 0
        # The kill surfaces either as a broken pipe at the next send or
        # as a dead process while awaiting the reply — both structured.
        assert info.value.phase in ("send", "reply")


class TestShutdownAfterFailedLaunch:
    """Satellite bugfix: shutdown after a failed launch is idempotent
    and never double-releases the data plane."""

    def _leaked_segments(self):
        return glob.glob("/dev/shm/repro-plane-*")

    def test_inproc_double_shutdown(self):
        transport = InprocTransport(2)
        transport.schedule_kill(0, "launch")
        g = grid_graph(3, 3)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport=transport
        )
        with pytest.raises(WorkerFailure):
            engine.run(initial=g.vertices())
        # run() already shut the transport down in its finally; both of
        # these must be no-ops, not double releases.
        transport.shutdown()
        transport.shutdown()
        with pytest.raises(EngineError):
            transport.round([("step", {}), ("step", {})])

    @pytest.mark.skipif(
        not shm_available() or not os.path.isdir("/dev/shm"),
        reason="POSIX shared memory unavailable",
    )
    def test_mp_failed_launch_releases_shm_once(self):
        before = set(self._leaked_segments())
        transport = MpTransport(2)
        transport.schedule_kill(1, "launch")
        g = grid_graph(3, 3)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport=transport
        )
        with pytest.raises(WorkerFailure):
            engine.run(initial=g.vertices())
        transport.shutdown()
        transport.shutdown()
        assert set(self._leaked_segments()) <= before

    def test_shutdown_never_launched(self):
        transport = MpTransport(2)
        transport.shutdown()
        transport.shutdown()


class TestRecoverValidation:
    def test_recover_before_launch(self):
        transport = InprocTransport(2)
        with pytest.raises(EngineError):
            transport.recover(0, b"")

    def test_recover_after_shutdown(self):
        g = grid_graph(2, 2)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport="inproc"
        )
        engine.run(initial=g.vertices())  # run() shuts the transport down
        with pytest.raises(EngineError):
            engine.transport.recover(0, b"")

    def test_recover_bad_worker_id(self):
        g = grid_graph(2, 2)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport="inproc"
        )
        transport = engine.transport
        try:
            transport.launch(engine._encoded_inits())
            with pytest.raises(EngineError):
                transport.recover(9, b"")
        finally:
            transport.shutdown()


class TestAmbientFaultRecovery:
    """The CI fault lane's schedule, replayed against a snapshotting
    engine: whatever round-kills the lane exported must be survivable."""

    def test_recovers_under_lane_schedule(self):
        from repro.apps.pagerank import make_pagerank_update
        from repro.datasets.webgraph import power_law_web_graph
        from repro.runtime import UpdateProgram

        plan = parse_fault_plan(_AMBIENT_PLAN or "1:3")
        kills = {
            w: when
            for w, when in plan.items()
            if isinstance(when, int) and 0 <= w < 2
        }
        assert kills, "fault lane must schedule at least one round kill"
        program = UpdateProgram(
            make_pagerank_update,
            kwargs={"schedule": "out", "epsilon": 1e-4},
        )
        clean = power_law_web_graph(60, out_degree=3, seed=11)
        RuntimeChromaticEngine(
            clean, program, num_workers=2, transport="inproc",
            max_sweeps=100,
        ).run(initial=clean.vertices())
        faulty = power_law_web_graph(60, out_degree=3, seed=11)
        engine = RuntimeChromaticEngine(
            faulty, program, num_workers=2, transport="inproc",
            max_sweeps=100, snapshot_every=2,
            max_recoveries=len(kills), recovery_backoff=0.0,
        )
        for w, when in kills.items():
            engine.transport.schedule_kill(w, when)
        result = engine.run(initial=faulty.vertices())
        assert result.extra["recoveries"] == len(kills)
        assert all(
            clean.vertex_data(v) == faulty.vertex_data(v)
            for v in clean.vertices()
        )


class TestSuggestedInterval:
    def test_paper_example_is_three_hours(self):
        from repro.distributed.snapshot import suggested_interval

        hours = suggested_interval(64) / 3600.0
        assert round(hours, 1) == 3.0
        # Accepts anything with a num_workers attribute.
        transport = InprocTransport(64)
        assert suggested_interval(transport) == suggested_interval(64)

    def test_doctests(self):
        import repro.distributed.snapshot as snap

        failures, _tests = doctest.testmod(snap)
        assert failures == 0
