"""Runtime backend tests: real-process execution must be bit-identical
to the reference engines.

The load-bearing property (ISSUE 2, paper Sec. 4.2.1): with a coloring
valid for the consistency model, same-color scopes never observe each
other's writes, so the chromatic execution order is deterministic and a
:class:`SequentialEngine` driven by :class:`ColorSweepScheduler` is a
ground-truth oracle for the parallel backends. Every comparison here is
exact equality — values, update counts, per-vertex histograms — across:

* the sequential oracle,
* the simulated :class:`ChromaticEngine` (same color-step semantics on
  the discrete-event cluster),
* :class:`RuntimeChromaticEngine` on ``InprocTransport``,
* :class:`RuntimeChromaticEngine` on ``MpTransport`` (real processes).
"""

import pickle
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Consistency,
    SequentialEngine,
    greedy_coloring,
    second_order_coloring,
    sum_sync,
)
from repro.core.graph import DataGraph
from repro.distributed import (
    ChromaticEngine,
    DataSizeModel,
    constant_cost,
    deploy,
)
from repro.distributed.deploy import plan_ownership
from repro.apps.lbp import init_lbp_data, make_lbp_update, potts_potential
from repro.apps.pagerank import make_pagerank_update, total_rank_sync_map
from repro.errors import EngineError, SchedulerError
from repro.runtime import (
    ColorSweepScheduler,
    CSRShardStore,
    InprocTransport,
    RuntimeChromaticEngine,
    UpdateProgram,
    WorkerFailure,
)
from repro.datasets.webgraph import power_law_web_graph

from tests.helpers import grid_graph, ring_graph


def flood_max(scope):
    best = scope.data
    for u in scope.neighbors:
        best = max(best, scope.neighbor(u))
    if best != scope.data:
        scope.data = best
        return [(u, best) for u in scope.neighbors]


def edge_accumulate(scope):
    """Edge-writing update (legal under EDGE/FULL): pushes D_v onto every
    adjacent edge and bumps D_v by the incoming edge sum."""
    total = scope.data
    for (a, b) in scope.adjacent_edges():
        total += scope.edge(a, b)
    for (a, b) in scope.adjacent_edges():
        scope.set_edge(a, b, scope.edge(a, b) + 1.0)
    if total != scope.data:
        scope.data = total
        return None
    return None


def exploding(scope):
    raise RuntimeError("boom at vertex %r" % (scope.vertex,))


def push_to_neighbors(scope):
    """FULL-consistency update writing *neighbor* vertex data — the
    ghost-write path: a worker mutates vertices it does not own."""
    share = scope.data
    if share:
        for u in scope.neighbors:
            scope.set_neighbor(u, scope.neighbor(u) + share)
        scope.data = 0.0
        return list(scope.neighbors)
    return None


def vertex_only_max(scope):
    """Writes D_v only (legal under every model, incl. VERTEX)."""
    best = scope.data
    for u in scope.neighbors:
        best = max(best, scope.neighbor(u))
    if best != scope.data:
        scope.data = best
        return list(scope.neighbors)
    return None


def graph_values(graph):
    vdata = {v: graph.vertex_data(v) for v in graph.vertices()}
    edata = {(a, b): graph.edge_data(a, b) for (a, b) in graph.edges()}
    return vdata, edata


def random_graph(num_vertices, num_edges, seed, default=0.0):
    """Seeded random simple digraph with numeric data on both levels."""
    rng = random.Random(seed)
    g = DataGraph()
    for i in range(num_vertices):
        g.add_vertex(i, data=float(rng.randrange(8)))
    added = set()
    attempts = 0
    while len(added) < num_edges and attempts < num_edges * 10:
        attempts += 1
        a = rng.randrange(num_vertices)
        b = rng.randrange(num_vertices)
        if a != b and (a, b) not in added:
            added.add((a, b))
            g.add_edge(a, b, data=float(rng.randrange(4)))
    return g.finalize()


class TestColorSweepScheduler:
    def test_pops_in_color_order(self):
        g = grid_graph(3, 3)
        coloring = greedy_coloring(g)
        sched = ColorSweepScheduler(coloring)
        for v in g.vertices():
            sched.add(v)
        popped = [sched.pop()[0] for _ in range(g.num_vertices)]
        assert not sched
        # Every vertex exactly once, grouped by ascending color.
        assert sorted(popped, key=repr) == sorted(g.vertices(), key=repr)
        colors = [coloring[v] for v in popped]
        assert colors == sorted(colors)

    def test_reschedule_during_own_color_waits_a_sweep(self):
        g = ring_graph(4)
        coloring = greedy_coloring(g)
        sched = ColorSweepScheduler(coloring)
        first = next(iter(g.vertices()))
        sched.add(first)
        vertex, _prio = sched.pop()
        assert vertex == first
        # Re-adding mid-"step" parks it for the color's next visit.
        sched.add(first)
        assert first in sched
        assert len(sched) == 1
        assert sched.pop()[0] == first

    def test_unknown_vertex_rejected(self):
        sched = ColorSweepScheduler({0: 0})
        with pytest.raises(SchedulerError):
            sched.add(99)

    def test_empty_pop_raises(self):
        sched = ColorSweepScheduler({0: 0})
        with pytest.raises(SchedulerError):
            sched.pop()


class TestTransports:
    def test_make_transport_rejects_unknown(self):
        with pytest.raises(EngineError):
            RuntimeChromaticEngine(
                grid_graph(2, 2), flood_max, num_workers=2, transport="bogus"
            )

    def test_transport_is_single_use(self):
        g = grid_graph(3, 3)
        transport = InprocTransport(2)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport=transport
        )
        engine.run(initial=g.vertices())
        with pytest.raises(EngineError):
            engine.run(initial=g.vertices())

    def test_worker_failure_carries_traceback(self):
        g = grid_graph(3, 3)
        engine = RuntimeChromaticEngine(
            g, exploding, num_workers=2, transport="mp"
        )
        with pytest.raises(WorkerFailure) as info:
            engine.run(initial=g.vertices())
        assert "boom at vertex" in str(info.value)

    def test_closure_program_fails_with_hint(self):
        g = grid_graph(2, 2)
        bump = 2.0

        def closure(scope):  # captures `bump`: unpicklable by reference
            scope.data = scope.data + bump

        with pytest.raises(EngineError) as info:
            RuntimeChromaticEngine(g, closure, num_workers=2)
        assert "UpdateProgram" in str(info.value)


class TestRuntimeEquivalence:
    """Exact cross-backend agreement on fixed workloads."""

    def _oracle(self, graph, fn, coloring, consistency=Consistency.EDGE):
        engine = SequentialEngine(
            graph,
            fn,
            consistency=consistency,
            scheduler=ColorSweepScheduler(coloring),
        )
        return engine.run(initial=graph.vertices())

    def test_inproc_and_mp_match_oracle_flood(self):
        g0 = grid_graph(6, 6)
        g0.set_vertex_data((0, 0), 10.0)
        coloring = greedy_coloring(g0)
        g1, g2, g3 = g0.copy(), g0.copy(), g0.copy()
        r1 = self._oracle(g1, flood_max, coloring)
        r2 = RuntimeChromaticEngine(
            g2, flood_max, num_workers=3, transport="inproc", coloring=coloring
        ).run(initial=g2.vertices())
        r3 = RuntimeChromaticEngine(
            g3, flood_max, num_workers=3, transport="mp", coloring=coloring
        ).run(initial=g3.vertices())
        assert r2.converged and r3.converged
        assert graph_values(g1) == graph_values(g2) == graph_values(g3)
        assert (
            r1.updates_per_vertex
            == r2.updates_per_vertex
            == r3.updates_per_vertex
        )
        assert r3.backend == "mp" and r3.num_workers == 3

    def test_matches_simulated_chromatic_engine(self):
        g = power_law_web_graph(200, out_degree=4, seed=7)
        coloring = greedy_coloring(g)
        fn = make_pagerank_update(epsilon=1e-4)
        g_sim, g_rt = g.copy(), g.copy()
        dep = deploy(g_sim, 3, partitioner="hash", skip_ingress_io=True)
        sim = ChromaticEngine(
            dep.cluster, g_sim, fn, dep.stores, dep.owner,
            constant_cost(1e6), DataSizeModel(16, 8), coloring=coloring,
        )
        r_sim = sim.run(initial=g_sim.vertices())
        rt = RuntimeChromaticEngine(
            g_rt,
            UpdateProgram(make_pagerank_update, kwargs={"epsilon": 1e-4}),
            num_workers=3,
            transport="inproc",
            coloring=coloring,
            partitioner="hash",
        )
        r_rt = rt.run(initial=g_rt.vertices())
        # Same deterministic placement pipeline -> same ownership.
        assert dict(dep.owner) == dict(rt.owner)
        assert r_sim.num_updates == r_rt.num_updates
        assert sim.gather_vertex_data() == {
            v: g_rt.vertex_data(v) for v in g_rt.vertices()
        }

    def test_lbp_bit_identical_on_processes(self):
        rows = cols = 6
        labels = 3
        g = grid_graph(rows, cols)
        rng = random.Random(3)
        unaries = {
            v: [rng.random() + 0.1 for _ in range(labels)]
            for v in g.vertices()
        }
        psi = potts_potential(labels, smoothing=1.5)
        coloring = greedy_coloring(g)
        g1, g2 = g.copy(), g.copy()
        init_lbp_data(g1, unaries)
        init_lbp_data(g2, unaries)
        r1 = self._oracle(g1, make_lbp_update(psi, epsilon=1e-3), coloring)
        r2 = RuntimeChromaticEngine(
            g2,
            UpdateProgram(make_lbp_update, args=(psi,), kwargs={"epsilon": 1e-3}),
            num_workers=2,
            transport="mp",
            coloring=coloring,
        ).run(initial=g2.vertices())
        assert r1.num_updates == r2.num_updates
        for v in g1.vertices():
            assert np.array_equal(
                g1.vertex_data(v)["belief"], g2.vertex_data(v)["belief"]
            )
        for key in g1.edges():
            for direction in (0, 1):
                assert np.array_equal(
                    g1.edge_data(*key)[direction], g2.edge_data(*key)[direction]
                )

    def test_sync_aggregation_matches_sequential(self):
        g = power_law_web_graph(120, out_degree=3, seed=2)
        coloring = greedy_coloring(g)
        total = sum_sync("total", map_fn=total_rank_sync_map)
        g_rt = g.copy()
        result = RuntimeChromaticEngine(
            g_rt,
            UpdateProgram(make_pagerank_update, kwargs={"epsilon": 1e-4}),
            num_workers=2,
            transport="mp",
            coloring=coloring,
            syncs=[total],
        ).run(initial=g_rt.vertices())
        # Final published value == the aggregate over the final data.
        expected = sum(g_rt.vertex_data(v) for v in g_rt.vertices())
        assert result.globals["total"] == pytest.approx(expected, abs=1e-2)

    def test_full_consistency_ghost_writes_reach_owner(self):
        """Regression: under FULL consistency a worker may write a
        *ghost* (``set_neighbor`` on a remote-owned vertex); the write
        must propagate to the owner and every other mirror, on both the
        runtime shard store and the simulated LocalGraphStore."""
        g = grid_graph(4, 4)
        g.set_vertex_data((0, 0), 8.0)
        coloring = second_order_coloring(g)
        cap = 3 * g.num_vertices
        results = {}
        for backend in ("inproc", "mp"):
            copy = g.copy()
            run = RuntimeChromaticEngine(
                copy,
                push_to_neighbors,
                num_workers=3,
                transport=backend,
                consistency=Consistency.FULL,
                coloring=coloring,
                partitioner="hash",
                max_updates=cap,
            ).run(initial=copy.vertices())
            results[backend] = (run.num_updates, graph_values(copy))
        assert results["inproc"] == results["mp"]
        executed = results["mp"][0]
        # Sequential oracle replayed to the same executed prefix.
        oracle = g.copy()
        SequentialEngine(
            oracle,
            push_to_neighbors,
            consistency=Consistency.FULL,
            scheduler=ColorSweepScheduler(coloring),
            max_updates=executed,
        ).run(initial=oracle.vertices())
        assert graph_values(oracle) == results["mp"][1]
        # Simulated chromatic engine agrees too (same store semantics).
        sim_graph = g.copy()
        dep = deploy(sim_graph, 3, partitioner="hash", skip_ingress_io=True)
        sim = ChromaticEngine(
            dep.cluster,
            sim_graph,
            push_to_neighbors,
            dep.stores,
            dep.owner,
            constant_cost(1e6),
            DataSizeModel(16, 8),
            consistency=Consistency.FULL,
            coloring=coloring,
            max_updates=cap,
        )
        sim_run = sim.run(initial=sim_graph.vertices())
        assert sim_run.num_updates == executed
        assert sim.gather_vertex_data() == {
            v: value for v, value in results["mp"][1][0].items()
        }

    def test_max_sweeps_and_round_robin_cap(self):
        g = power_law_web_graph(100, out_degree=3, seed=5)
        coloring = greedy_coloring(g)
        sweeps = 4
        g1, g2 = g.copy(), g.copy()
        r1 = SequentialEngine(
            g1,
            make_pagerank_update(schedule="self"),
            scheduler=ColorSweepScheduler(coloring),
            max_updates=sweeps * g.num_vertices,
        ).run(initial=g1.vertices())
        r2 = RuntimeChromaticEngine(
            g2,
            UpdateProgram(make_pagerank_update, kwargs={"schedule": "self"}),
            num_workers=2,
            transport="inproc",
            coloring=coloring,
            max_sweeps=sweeps,
        ).run(initial=g2.vertices())
        assert r1.num_updates == r2.num_updates == sweeps * g.num_vertices
        assert not r2.converged and r2.sweeps == sweeps
        assert graph_values(g1) == graph_values(g2)


class TestRuntimeProperties:
    """Property: bit-identical to the oracle on random graphs, across
    vertex/edge/full consistency and worker counts (ISSUE 2 satellite)."""

    @given(
        seed=st.integers(0, 10_000),
        num_workers=st.integers(1, 4),
        model=st.sampled_from(
            [Consistency.VERTEX, Consistency.EDGE, Consistency.FULL]
        ),
    )
    @settings(max_examples=12, deadline=None)
    def test_bit_identical_to_oracle(self, seed, num_workers, model):
        rng = random.Random(seed)
        n = rng.randrange(4, 18)
        g = random_graph(n, num_edges=2 * n, seed=seed)
        # A proper (or second-order, for FULL) coloring makes the
        # chromatic order deterministic under every model.
        coloring = (
            second_order_coloring(g)
            if model is Consistency.FULL
            else greedy_coloring(g)
        )
        fn = vertex_only_max if model is Consistency.VERTEX else edge_accumulate
        g1, g2 = g.copy(), g.copy()
        r1 = SequentialEngine(
            g1,
            fn,
            consistency=model,
            scheduler=ColorSweepScheduler(coloring),
            max_updates=4 * n,
        ).run(initial=g1.vertices())
        r2 = RuntimeChromaticEngine(
            g2,
            fn,
            num_workers=num_workers,
            transport="inproc",
            consistency=model,
            coloring=coloring,
            partitioner="hash",
            max_updates=4 * n,
        ).run(initial=g2.vertices())
        if r1.converged and r2.converged:
            assert r1.updates_per_vertex == r2.updates_per_vertex
            assert graph_values(g1) == graph_values(g2)
        else:
            # Caps bind at different boundaries (mid-sweep vs sweep
            # edge); the executed prefix still agrees: replay the oracle
            # to the runtime's exact update count.
            g3 = g.copy()
            SequentialEngine(
                g3,
                fn,
                consistency=model,
                scheduler=ColorSweepScheduler(coloring),
                max_updates=r2.num_updates,
            ).run(initial=g3.vertices())
            assert graph_values(g3) == graph_values(g2)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_mp_equals_inproc(self, seed):
        g = random_graph(12, num_edges=24, seed=seed)
        coloring = greedy_coloring(g)
        g1, g2 = g.copy(), g.copy()
        r1 = RuntimeChromaticEngine(
            g1, flood_max, num_workers=2, transport="inproc", coloring=coloring
        ).run(initial=g1.vertices())
        r2 = RuntimeChromaticEngine(
            g2, flood_max, num_workers=2, transport="mp", coloring=coloring
        ).run(initial=g2.vertices())
        assert r1.updates_per_vertex == r2.updates_per_vertex
        assert graph_values(g1) == graph_values(g2)


class TestShardStore:
    def _store(self, g, workers=2):
        plan = plan_ownership(g, workers, partitioner="hash")
        return CSRShardStore(0, g, plan.owner), plan

    def test_versions_and_dirty_tracking(self):
        g = ring_graph(6)
        store, plan = self._store(g)
        v = store.owned_vertices[0]
        store.set_vertex_data(v, 42.0)
        assert store.vertex_data(v) == 42.0
        assert store.version(("v", v)) == 1
        assert store.dirty_count >= 1

    def test_apply_remote_is_version_filtered(self):
        g = ring_graph(6)
        store, plan = self._store(g)
        ghost = next(iter(store.ghost_vertices))
        key = ("v", ghost)
        assert store.apply_remote(key, 5.0, version=2)
        assert store.vertex_data(ghost) == 5.0
        # Stale and duplicate pushes are dropped.
        assert not store.apply_remote(key, -1.0, version=2)
        assert not store.apply_remote(key, -1.0, version=1)
        assert store.vertex_data(ghost) == 5.0

    def test_collect_dirty_matches_flat_routing(self):
        g = ring_graph(8)
        store, plan = self._store(g, workers=3)
        for v in store.owned_vertices:
            store.set_vertex_data(v, 7.0)
        flat = store.collect_dirty_flat()
        # Rebuild the same writes and compare against the legacy format.
        store2 = CSRShardStore(0, g, plan.owner)
        for v in store2.owned_vertices:
            store2.set_vertex_data(v, 7.0)
        legacy = store2.collect_dirty()
        assert set(flat) == set(legacy)
        index_of = g.vertex_index()
        for dst in legacy:
            legacy_v = [
                (index_of[key[1]], value, version)
                for (key, value, version, _b) in legacy[dst]
                if key[0] == "v"
            ]
            flat_v = list(
                zip(flat[dst].v_index, flat[dst].v_value, flat[dst].v_version)
            )
            assert sorted(legacy_v) == sorted(flat_v)

    def test_checkpoint_covers_owned_data(self):
        g = grid_graph(3, 3)
        store, plan = self._store(g)
        payload = store.checkpoint_payload()
        assert set(payload["vdata"]) == set(store.owned_vertices)
        for (a, b) in payload["edata"]:
            assert plan.owner[a] == 0


class TestPicklability:
    def test_csr_graph_roundtrip_rebuilds_views(self):
        g = grid_graph(4, 5)
        # Warm a memo cache; it must NOT travel.
        g.neighbor_set((1, 1))
        csr = g.compiled
        csr.bind_cache_for(Consistency.EDGE)["sentinel"] = object()
        clone = pickle.loads(pickle.dumps(g))
        csr2 = clone.compiled
        assert clone.finalized
        assert csr2.vertex_ids == csr.vertex_ids
        assert csr2.edge_keys == csr.edge_keys
        assert csr2.out_ids == csr.out_ids
        assert csr2.in_ids == csr.in_ids
        assert csr2.nbr_ids == csr.nbr_ids
        assert csr2.nbr_sets == csr.nbr_sets
        assert csr2.adj_edges == csr.adj_edges
        assert csr2.in_gather == csr.in_gather
        assert csr2.edge_slot == csr.edge_slot
        assert np.array_equal(csr2.out_offsets, csr.out_offsets)
        assert np.array_equal(csr2.nbr_targets, csr.nbr_targets)
        assert csr2.vdata == csr.vdata and csr2.edata == csr.edata
        # Memo caches are process-local: fresh and empty after the trip.
        assert csr2.bind_cache == {} and csr2.write_set_cache == {}

    def test_update_program_roundtrip(self):
        prog = UpdateProgram(make_pagerank_update, kwargs={"epsilon": 1e-2})
        clone = pickle.loads(pickle.dumps(prog))
        scopeless = clone.resolve()
        assert callable(scopeless)
