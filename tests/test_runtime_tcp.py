"""The socket transport (PR 9 tentpole): framed TCP rounds, connection
supervision, network fault injection, and the recovery contract.

Three layers of assertions:

* **Equivalence** — chromatic runs over TCP localhost are bit-identical
  to ``MpTransport`` at workers 1/2/4, the loopback double matches the
  deterministic ``InprocTransport`` under a hypothesis sweep, the
  locking engine reaches its fixed point over TCP, and a deterministic
  run reports byte-identical wire counters on all three backends.
* **Supervision** — a dropped / torn / partitioned link inside the
  retry budget is re-established transparently (run completes,
  ``reconnects > 0``, result verified); budget exhaustion raises one
  structured :class:`WorkerFailure` that the existing snapshot/recovery
  path turns into a respawn-and-rollback completion; ``resume_from``
  cold-restarts over TCP from the snapshots a partition stranded.
* **Grammar** — the ``REPRO_FAULT`` network modes parse, validate, and
  are rejected (loudly) by backends that cannot inject them.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.pagerank import make_pagerank_update
from repro.datasets.webgraph import power_law_web_graph
from repro.errors import FaultSpecError
from repro.runtime import (
    FAULT_ENV,
    InprocTransport,
    LoopbackTcpTransport,
    MpTransport,
    RuntimeChromaticEngine,
    RuntimeLockingEngine,
    TcpTransport,
    UpdateProgram,
    WorkerFailure,
    make_transport,
    parse_fault_plan,
)

PAGERANK = UpdateProgram(
    make_pagerank_update, kwargs={"schedule": "out", "epsilon": 1e-4}
)


@pytest.fixture(autouse=True)
def _clear_fault_env(monkeypatch):
    monkeypatch.delenv(FAULT_ENV, raising=False)


def web(n=48, seed=11):
    return power_law_web_graph(n, out_degree=3, seed=seed)


def ranks(graph):
    return {v: graph.vertex_data(v) for v in graph.vertices()}


def chromatic_run(graph, transport, **kw):
    engine = RuntimeChromaticEngine(
        graph, PAGERANK, num_workers=transport.num_workers,
        transport=transport, max_sweeps=100, **kw,
    )
    return engine.run(initial=graph.vertices())


def loopback(num_workers=2, **kw):
    """A snappy loopback double for fault tests: tight liveness knobs
    so failure paths resolve in milliseconds, not default deadlines."""
    kw.setdefault("heartbeat_interval", 0.02)
    kw.setdefault("heartbeat_timeout", 1.0)
    kw.setdefault("reply_timeout", 60.0)
    return LoopbackTcpTransport(num_workers, **kw)


def reference_ranks(num_workers=2, n=48, seed=11):
    g = web(n, seed)
    chromatic_run(g, InprocTransport(num_workers))
    return ranks(g)


class TestEquivalence:
    def test_make_transport_names(self):
        assert isinstance(make_transport("tcp", 2), TcpTransport)
        assert isinstance(
            make_transport("tcp-loopback", 2), LoopbackTcpTransport
        )
        t = make_transport("tcp", 3, reply_timeout=45.0)
        assert t.reply_timeout == 45.0
        assert t.num_workers == 3

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_tcp_bit_identical_to_mp(self, workers):
        g_mp = web()
        chromatic_run(g_mp, MpTransport(workers))
        g_tcp = web()
        result = chromatic_run(g_tcp, TcpTransport(workers))
        assert ranks(g_tcp) == ranks(g_mp)
        assert result.extra["reconnects"] == 0
        assert result.extra["retries"] == 0

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 10_000), workers=st.sampled_from([1, 2, 3]))
    def test_loopback_bit_identical_property(self, seed, workers):
        """Any worker count, any graph: the framed socket wire changes
        nothing about the chromatic engine's answer."""
        g_ref = web(36, seed)
        chromatic_run(g_ref, InprocTransport(workers))
        g = web(36, seed)
        chromatic_run(g, LoopbackTcpTransport(workers))
        assert ranks(g) == ranks(g_ref)

    def test_locking_fixed_point_over_tcp(self):
        ref = reference_ranks()
        g = web()
        result = RuntimeLockingEngine(
            g, PAGERANK, num_workers=2, transport=TcpTransport(2)
        ).run(initial=g.vertices())
        assert result.converged
        got = ranks(g)
        for v, rank in ref.items():
            assert got[v] == pytest.approx(rank, abs=1e-3)

    def test_byte_counters_agree_across_three_backends(self):
        """The PR 5 parity contract extended to the framed wire: the
        pickled bodies are counted once per sequence number, never the
        frame headers, hellos, heartbeats, or retransmissions — so a
        deterministic no-plane run reports identical counters on
        inproc, mp, and tcp."""
        observed = {}
        for label, transport in (
            ("inproc", InprocTransport(2)),
            ("mp", MpTransport(2)),
            ("tcp", TcpTransport(2)),
        ):
            g = web()
            chromatic_run(g, transport, use_plane=False)
            observed[label] = (
                transport.bytes_sent,
                transport.bytes_received,
                transport.rounds_completed,
            )
        assert observed["tcp"] == observed["inproc"] == observed["mp"]

    def test_retransmissions_not_counted(self):
        """A drop forces a replayed command; the byte counters must
        match the clean run exactly (retransmissions excluded)."""
        g_clean = web()
        clean = LoopbackTcpTransport(2)
        chromatic_run(g_clean, clean)
        t = loopback()
        t.schedule_fault(0, 3, mode="drop_conn")
        g = web()
        chromatic_run(g, t)
        assert t.retries > 0
        assert (t.bytes_sent, t.bytes_received) == (
            clean.bytes_sent, clean.bytes_received
        )


class TestSupervision:
    def test_drop_conn_recovers_transparently(self):
        ref = reference_ranks()
        t = loopback()
        t.schedule_fault(0, 3, mode="drop_conn")
        g = web()
        result = chromatic_run(g, t)
        assert ranks(g) == ref
        assert result.extra["reconnects"] > 0
        assert result.extra["retries"] > 0
        assert t.reconnects == result.extra["reconnects"]

    def test_reset_mid_frame_recovers_transparently(self):
        ref = reference_ranks()
        t = loopback()
        t.schedule_fault(1, 5, mode="reset_mid_frame")
        g = web()
        result = chromatic_run(g, t)
        assert ranks(g) == ref
        assert result.extra["reconnects"] > 0

    def test_delay_is_latency_not_failure(self):
        ref = reference_ranks()
        t = loopback()
        t.schedule_fault(0, 2, mode="delay", arg=30)
        g = web()
        result = chromatic_run(g, t)
        assert ranks(g) == ref
        assert result.extra["reconnects"] == 0

    def test_partition_inside_budget_heals(self):
        ref = reference_ranks()
        t = loopback(retry_budget=4)
        t.schedule_fault(0, 4, mode="partition", arg=2)
        g = web()
        result = chromatic_run(g, t)
        assert ranks(g) == ref
        assert result.extra["reconnects"] > 0

    def test_partition_exhausts_budget_into_worker_failure(self):
        t = loopback(retry_budget=3)
        t.schedule_fault(1, 3, mode="partition", arg=5)
        g = web()
        with pytest.raises(WorkerFailure) as exc_info:
            chromatic_run(g, t)
        failure = exc_info.value
        assert failure.worker_id == 1
        assert "retry budget" in failure.detail

    def test_exhaustion_recovers_via_snapshots(self, tmp_path):
        """Budget exhaustion is the same structured failure the PR 6/8
        recovery path consumes: respawn, roll back, finish verified."""
        ref = reference_ranks()
        t = loopback(retry_budget=3)
        t.schedule_fault(1, 3, mode="partition", arg=5)
        g = web()
        result = chromatic_run(
            g, t, snapshot_every=2, max_recoveries=4,
            recovery_backoff=0.0, snapshot_dir=str(tmp_path),
        )
        assert ranks(g) == ref
        assert result.extra["recoveries"] >= 1
        assert result.extra["reconnects"] == 0  # the link never healed

    def test_stall_keeps_heartbeats_flowing(self):
        """A slow worker over TCP is slow, not dead: heartbeats ride
        the socket through the stall and no failure is declared."""
        ref = reference_ranks()
        t = loopback()
        t.schedule_fault(0, 2, mode="stall", arg=0.2)
        g = web()
        chromatic_run(g, t)
        assert ranks(g) == ref
        assert t.heartbeats_received > 0

    def test_hang_detected_and_recovered_over_real_tcp(self, tmp_path):
        """PR 8's hang detection carried to the socket backend: a real
        SIGSTOPped process is declared dead by heartbeat silence and
        the run completes through respawn + rollback."""
        ref = reference_ranks()
        t = TcpTransport(
            2, reply_timeout=60.0, heartbeat_interval=0.05,
            heartbeat_timeout=1.0,
        )
        t.schedule_fault(0, 4, mode="hang")
        g = web()
        result = chromatic_run(
            g, t, snapshot_every=2, max_recoveries=4,
            recovery_backoff=0.0, snapshot_dir=str(tmp_path),
        )
        assert ranks(g) == ref
        assert result.extra["recoveries"] >= 1

    def test_net_span_and_counters_in_telemetry(self):
        t = loopback()
        t.schedule_fault(0, 3, mode="drop_conn")
        g = web()
        result = chromatic_run(g, t, telemetry=True)
        tel = result.telemetry
        coord = tel.counters.get(-1, {})
        assert coord.get("reconnects", 0) > 0
        assert coord.get("retries", 0) > 0
        net_spans = [e for e in tel.events if e[1] == "net"]
        assert net_spans, "reconnects must record a coordinator net span"
        for (_track, _kind, start, end, _a, _b) in net_spans:
            assert end >= start


class TestResumeOverTcp:
    @pytest.mark.parametrize("engine_cls", [
        RuntimeChromaticEngine, RuntimeLockingEngine,
    ])
    def test_cold_restart_after_partition(self, engine_cls, tmp_path):
        """A partition strands run 1 with no recovery budget; run 2 on
        a fresh TCP transport cold-restarts from the verified snapshot
        directory and finishes correctly — both engines."""
        ref = reference_ranks()

        def build(transport, **extra_kw):
            g = web()
            kw = dict(
                num_workers=2, transport=transport, snapshot_every=2,
                snapshot_dir=str(tmp_path), **extra_kw,
            )
            if engine_cls is RuntimeChromaticEngine:
                kw["max_sweeps"] = 100
            return g, engine_cls(g, PAGERANK, **kw)

        t = loopback(retry_budget=3)
        t.schedule_fault(0, 5, mode="partition", arg=5)
        g1, engine1 = build(t, max_recoveries=0)
        with pytest.raises(WorkerFailure):
            engine1.run(initial=g1.vertices())
        assert os.path.isdir(str(tmp_path))

        g2, engine2 = build(loopback())
        result = engine2.run(
            initial=g2.vertices(), resume_from=str(tmp_path)
        )
        got = ranks(g2)
        if engine_cls is RuntimeChromaticEngine:
            assert got == ref
        else:
            assert result.converged
            # a rollback + cold restart stacks two epsilon-bounded
            # convergences, so allow a little more drift than the
            # single-run 1e-3 contract
            for v, rank in ref.items():
                assert got[v] == pytest.approx(rank, abs=5e-3)
        assert "resume_seconds" in result.extra


class TestFaultGrammar:
    def test_network_modes_parse(self):
        plan = parse_fault_plan(
            "0:3:drop_conn,1:2:partition=3,2:4:delay=20,3:1:reset_mid_frame"
        )
        assert plan[0].mode == "drop_conn" and plan[0].arg is None
        assert plan[1].mode == "partition" and plan[1].arg == 3
        assert plan[2].mode == "delay" and plan[2].arg == 20
        assert plan[3].mode == "reset_mid_frame"

    @pytest.mark.parametrize("text", [
        "0:3:partition",          # partition needs a count
        "0:3:partition=0",        # ... a positive one
        "0:3:partition=1.5",      # ... an integral one
        "0:3:delay",              # delay needs milliseconds
        "0:3:delay=-1",           # ... non-negative
        "0:3:drop_conn=2",        # drop_conn takes no arg
        "0:3:reset_mid_frame=1",  # reset_mid_frame takes no arg
        "0:launch:drop_conn",     # network modes cannot fire at launch
    ])
    def test_malformed_network_entries_raise(self, text):
        with pytest.raises(FaultSpecError):
            parse_fault_plan(text)

    @pytest.mark.parametrize("transport_cls", [InprocTransport, MpTransport])
    def test_pipe_backends_reject_network_modes(self, transport_cls):
        t = transport_cls(2)
        with pytest.raises(FaultSpecError, match="socket transport"):
            t.schedule_fault(0, 3, mode="drop_conn")

    def test_pipe_backend_rejects_network_mode_from_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "0:3:drop_conn")
        with pytest.raises(FaultSpecError, match="socket transport"):
            InprocTransport(2)

    def test_loopback_rejects_process_signal_modes(self):
        t = LoopbackTcpTransport(2)
        with pytest.raises(FaultSpecError, match="not injectable"):
            t.schedule_fault(0, 3, mode="hang")

    def test_socket_backends_accept_network_modes(self):
        for cls in (TcpTransport, LoopbackTcpTransport):
            t = cls(2)
            t.schedule_fault(0, 3, mode="partition", arg=2)
            assert t._fault_plan[0].mode == "partition"
