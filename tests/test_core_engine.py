"""Tests for the in-process reference engines (Alg. 2 semantics)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Consistency,
    SequentialEngine,
    ThreadedEngine,
    run_to_convergence,
    sum_sync,
)
from repro.errors import EngineError, GraphNotFinalizedError
from repro.core.graph import DataGraph

from tests.helpers import grid_graph, path_graph, ring_graph


def increment(scope):
    """Touch-once update: bump own data, schedule nothing."""
    scope.data = scope.data + 1.0


def propagate_max(scope):
    """Flood-max: adopt the max of neighbors; reschedule on change."""
    best = scope.data
    for u in scope.neighbors:
        best = max(best, scope.neighbor(u))
    if best != scope.data:
        scope.data = best
        return scope.neighbors
    return None


class TestSequentialEngine:
    def test_requires_finalized_graph(self):
        g = DataGraph(vertices=[0])
        with pytest.raises(GraphNotFinalizedError):
            SequentialEngine(g, increment)

    def test_executes_each_seed_once(self):
        g = ring_graph(5)
        result = SequentialEngine(g, increment).run(initial=g.vertices())
        assert result.num_updates == 5
        assert result.converged
        assert all(g.vertex_data(v) == 2.0 for v in g.vertices())

    def test_dynamic_scheduling_floods(self):
        g = path_graph(10)
        g.set_vertex_data(0, 9.0)
        result = run_to_convergence(g, propagate_max, initial=g.vertices())
        assert result.converged
        assert all(g.vertex_data(v) == 9.0 for v in g.vertices())
        # Dynamic scheduling did real work: more updates than vertices.
        assert result.num_updates > g.num_vertices

    def test_max_updates_caps_execution(self):
        g = ring_graph(3)

        def always_reschedule(scope):
            scope.data = scope.data + 1
            return [scope.vertex]

        result = SequentialEngine(g, always_reschedule, max_updates=7).run(
            initial=[0]
        )
        assert result.num_updates == 7
        assert not result.converged

    def test_updates_per_vertex_histogram(self):
        g = path_graph(3)
        g.set_vertex_data(0, 5.0)
        result = run_to_convergence(g, propagate_max, initial=list(g.vertices()))
        assert sum(result.updates_per_vertex.values()) == result.num_updates
        assert result.updates_per_vertex[0] >= 1

    def test_trace_recorded_and_serializable(self):
        g = ring_graph(4)
        result = SequentialEngine(g, increment, trace=True).run(
            initial=g.vertices()
        )
        assert result.trace is not None
        assert len(result.trace) == 4
        assert result.trace.is_serializable()

    def test_priority_scheduler_order(self):
        g = ring_graph(4)
        seen = []

        def observe(scope):
            seen.append(scope.vertex)

        engine = SequentialEngine(g, observe, scheduler="priority")
        engine.run(initial=[(0, 1.0), (1, 9.0), (2, 5.0)])
        assert seen == [1, 2, 0]

    def test_sweep_scheduler_gauss_seidel(self):
        g = path_graph(4)
        seen = []

        def observe(scope):
            seen.append(scope.vertex)

        engine = SequentialEngine(g, observe, scheduler="sweep")
        engine.run(initial=[2, 0, 3, 1])
        assert seen == [0, 1, 2, 3]

    def test_syncs_published_before_and_after(self):
        g = ring_graph(4, vdata=1.0)
        total = sum_sync("total", map_fn=lambda s: s.data)
        engine = SequentialEngine(g, increment, syncs=[total])
        result = engine.run(initial=g.vertices())
        assert result.globals["total"] == 8.0  # after all increments

    def test_sync_interval_updates(self):
        g = ring_graph(4, vdata=0.0)
        observed = []
        total = sum_sync("total", map_fn=lambda s: s.data, interval_updates=2)

        def fn(scope):
            observed.append(scope.globals.get("total"))
            scope.data = scope.data + 1.0

        SequentialEngine(g, fn, syncs=[total]).run(initial=g.vertices())
        # Sync ran at 0 (initial), after update 2 -> visible to updates 3,4.
        assert observed[0] == 0.0
        assert observed[2] == 2.0

    def test_initial_globals_visible(self):
        g = ring_graph(2)
        seen = {}

        def fn(scope):
            seen[scope.vertex] = scope.globals["alpha"]

        SequentialEngine(g, fn, initial_globals={"alpha": 0.15}).run(
            initial=[0, 1]
        )
        assert seen == {0: 0.15, 1: 0.15}


class TestThreadedEngine:
    def test_rejects_bad_worker_count(self):
        g = ring_graph(3)
        with pytest.raises(EngineError):
            ThreadedEngine(g, increment, num_workers=0)

    def test_completes_all_updates(self):
        g = grid_graph(6, 6)
        engine = ThreadedEngine(g, increment, num_workers=4)
        result = engine.run(initial=g.vertices())
        assert result.num_updates == 36
        assert all(g.vertex_data(v) == 1.0 for v in g.vertices())

    def test_edge_consistency_trace_is_serializable(self):
        g = grid_graph(5, 5)

        def bump_with_neighbor_reads(scope):
            total = sum(scope.neighbor(u) for u in scope.neighbors)
            scope.data = scope.data + 1.0 + 0.0 * total

        engine = ThreadedEngine(
            g,
            bump_with_neighbor_reads,
            num_workers=4,
            consistency=Consistency.EDGE,
            trace=True,
        )
        result = engine.run(initial=g.vertices())
        assert result.num_updates == 25
        result.trace.check()

    def test_dynamic_flood_terminates(self):
        g = grid_graph(4, 4)
        g.set_vertex_data((0, 0), 3.0)
        engine = ThreadedEngine(g, propagate_max, num_workers=3)
        result = engine.run(initial=list(g.vertices()))
        assert result.converged
        assert all(g.vertex_data(v) == 3.0 for v in g.vertices())

    def test_max_updates_respected(self):
        g = ring_graph(4)

        def reschedule(scope):
            return [scope.vertex]

        engine = ThreadedEngine(g, reschedule, num_workers=2, max_updates=10)
        result = engine.run(initial=[0, 1])
        assert not result.converged
        assert result.num_updates <= 10 + 2  # may overshoot by in-flight


class TestEngineEquivalence:
    """Sequential and threaded engines agree for commuting updates."""

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=1, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_increment_everywhere_matches(self, rows, workers):
        g1 = grid_graph(rows, 3)
        g2 = g1.copy()
        SequentialEngine(g1, increment).run(initial=g1.vertices())
        ThreadedEngine(g2, increment, num_workers=workers).run(
            initial=g2.vertices()
        )
        for v in g1.vertices():
            assert g1.vertex_data(v) == g2.vertex_data(v)
