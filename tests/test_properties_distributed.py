"""Property-based tests of the distributed invariants (DESIGN.md Sec. 5).

Hypothesis drives random graphs, partitions, and operation sequences
against the invariants the paper's correctness rests on: deadlock-free
lock acquisition, monotone version coherence, atom-journal round-trips,
and serializability of the locking engine under arbitrary topologies.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Consistency, SequentialEngine
from repro.core.consistency import LockKind, lock_plan, vertex_key
from repro.core.graph import DataGraph
from repro.distributed import (
    Atom,
    DataSizeModel,
    LockingEngine,
    build_atoms,
    build_stores,
    constant_cost,
    deploy,
    random_hash_assignment,
)
from repro.distributed.locks import VertexLockTable
from repro.sim import SimKernel

SIZES = DataSizeModel(8, 8)


@st.composite
def small_graphs(draw):
    """Connected-ish random graphs with 4-12 vertices."""
    n = draw(st.integers(min_value=4, max_value=12))
    g = DataGraph(vertices=[(i, float(i)) for i in range(n)])
    # spanning path keeps things connected
    for i in range(n - 1):
        g.add_edge(i, i + 1, data=1.0)
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            max_size=10,
        )
    )
    for (u, v) in extra:
        if u != v and not g.has_edge(u, v) and not g.has_edge(v, u):
            g.add_edge(u, v, data=1.0)
    return g.finalize()


class TestLockOrderingDeadlockFreedom:
    @given(small_graphs(), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_concurrent_scope_acquisitions_all_complete(self, g, seed):
        """Random concurrent edge-consistency acquisitions in canonical
        order never deadlock: every requester eventually holds and
        releases its whole plan."""
        import random

        rng = random.Random(seed)
        kernel = SimKernel()
        table = VertexLockTable(kernel, list(g.vertices()))
        vertices = list(g.vertices())
        completed = []

        def acquire_scope(v):
            plan = lock_plan(g, v, Consistency.EDGE)
            for vid, kind in plan:
                yield table.request(vid, kind)
            yield kernel.timeout(rng.random())
            for vid, kind in plan:
                table.release(vid, kind)
            completed.append(v)

        requests = [rng.choice(vertices) for _ in range(12)]
        for v in requests:
            kernel.spawn(acquire_scope(v))
        kernel.run()
        assert sorted(map(str, completed)) == sorted(map(str, requests))
        for v in vertices:
            assert table.holders(v) == (0, False)
            assert table.queue_length(v) == 0


class TestVersionMonotonicity:
    @given(
        small_graphs(),
        st.lists(st.tuples(st.integers(0, 11), st.floats(-5, 5)), max_size=30),
    )
    @settings(max_examples=30, deadline=None)
    def test_versions_never_decrease_and_pushes_idempotent(self, g, writes):
        owner = random_hash_assignment(g, 2)
        stores = build_stores(g, owner, 2)
        last = {}
        for (raw, value) in writes:
            v = raw % g.num_vertices
            store = stores[owner[v]]
            store.set_vertex_data(v, value)
            key = vertex_key(v)
            version = store.version(key)
            assert version > last.get((owner[v], key), 0) - 1
            last[(owner[v], key)] = version
        # All pushes apply exactly once; re-application is a no-op.
        for m in (0, 1):
            for dst, entries in stores[m].collect_dirty().items():
                for (key, value, version, _b) in entries:
                    assert stores[dst].apply_remote(key, value, version)
                    assert not stores[dst].apply_remote(key, value, version)

    @given(small_graphs())
    @settings(max_examples=20, deadline=None)
    def test_flush_reconciles_all_ghosts(self, g):
        """After writing everywhere and exchanging all dirty data, every
        ghost equals its primary."""
        owner = random_hash_assignment(g, 3)
        stores = build_stores(g, owner, 3)
        for v in g.vertices():
            stores[owner[v]].set_vertex_data(v, float(hash(v) % 97))
        for m in range(3):
            for dst, entries in stores[m].collect_dirty().items():
                for (key, value, version, _b) in entries:
                    stores[dst].apply_remote(key, value, version)
        for v in g.vertices():
            primary = stores[owner[v]].vertex_data(v)
            for m in range(3):
                if m != owner[v] and stores[m].has_vertex(v):
                    assert stores[m].vertex_data(v) == primary


class TestAtomRoundTrip:
    @given(small_graphs(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_encode_decode_preserves_everything(self, g, k):
        assignment = random_hash_assignment(g, k)
        atoms, index = build_atoms(g, assignment, k, sizes=SIZES)
        for atom in atoms:
            decoded = Atom.decode(atom.encode())
            assert decoded.owned_vertices == atom.owned_vertices
            assert decoded.ghost_vertices == atom.ghost_vertices
            assert [c.op for c in decoded.commands] == [
                c.op for c in atom.commands
            ]
        # Index invariants: counts partition |V|; connectivity symmetric
        # keys are ordered pairs.
        assert sum(index.vertex_counts.values()) == g.num_vertices
        for (a, b) in index.connectivity:
            assert a < b


class TestLockingEngineSerializability:
    @given(small_graphs(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_random_graphs_random_partitions_serializable(self, g, machines):
        def bump(scope):
            total = sum(scope.neighbor(u) for u in scope.neighbors)
            scope.data = scope.data + 1.0 + 0.0 * total

        dep = deploy(
            g, machines, partitioner="hash", skip_ingress_io=True
        )
        engine = LockingEngine(
            dep.cluster, g, bump, dep.stores, dep.owner,
            constant_cost(1e6), SIZES, trace=True,
        )
        result = engine.run(initial=g.vertices())
        assert result.converged
        assert result.num_updates == g.num_vertices
        result.extra["trace"].check()
        # The distributed result matches the sequential reference.
        reference = g.copy()
        SequentialEngine(reference, bump).run(initial=reference.vertices())
        values = engine.gather_vertex_data()
        for v in g.vertices():
            assert values[v] == reference.vertex_data(v)
