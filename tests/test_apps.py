"""Tests for the applications: PageRank, ALS, LBP, GMM/CoSeg, CoEM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    exact_pagerank,
    initialize_factors,
    initialize_gmm,
    initialize_ranks,
    jacobi_pagerank_sweep,
    l1_error,
    labeling_accuracy,
    make_als_update,
    make_coem_update,
    make_lbp_update,
    make_pagerank_update,
    map_labels,
    phrase_labels,
    potts_potential,
    prepare_coseg,
    segmentation_accuracy,
    segmentation_labels,
    synchronous_lbp_sweep,
    test_rmse,
    top_words_per_type,
    total_residual,
    training_rmse,
)
from repro.apps.lbp import get_message, init_lbp_data, set_message
from repro.core import Consistency, Scope, SequentialEngine
from repro.datasets import (
    grid_2d,
    mesh_3d,
    power_law_web_graph,
    synthetic_ner,
    synthetic_netflix,
    synthetic_video,
)
from repro.errors import ConsistencyError


class TestPageRank:
    def test_converges_to_exact(self):
        g = power_law_web_graph(150, seed=1)
        truth = exact_pagerank(g)
        update = make_pagerank_update(epsilon=1e-7)
        SequentialEngine(g, update, scheduler="priority").run(
            initial=g.vertices()
        )
        assert l1_error(g, truth) < 1e-3

    def test_ranks_sum_to_one(self):
        g = power_law_web_graph(100, seed=2)
        truth = exact_pagerank(g)
        assert sum(truth.values()) == pytest.approx(1.0, abs=1e-6)

    def test_update_respects_edge_consistency(self):
        """PageRank needs only reads of neighbors: runs under EDGE."""
        g = power_law_web_graph(30, seed=3)
        update = make_pagerank_update()
        scope = Scope(g, 0, model=Consistency.EDGE)
        update(scope)  # must not raise ConsistencyError

    def test_jacobi_sweep_reduces_error(self):
        g = power_law_web_graph(100, seed=4)
        truth = exact_pagerank(g)
        initialize_ranks(g)
        before = l1_error(g, truth)
        jacobi_pagerank_sweep(g)
        assert l1_error(g, truth) < before

    def test_schedule_policy_validation(self):
        with pytest.raises(ValueError):
            make_pagerank_update(schedule="sideways")

    def test_initialize_ranks(self):
        g = power_law_web_graph(10, seed=5)
        initialize_ranks(g, value=0.5)
        assert all(g.vertex_data(v) == 0.5 for v in g.vertices())


class TestALS:
    def test_recovers_planted_structure(self):
        data = synthetic_netflix(num_users=100, num_movies=40, seed=6)
        initialize_factors(data.graph, 4, seed=1)
        update = make_als_update(d=4, epsilon=1e-3)
        SequentialEngine(
            data.graph, update, scheduler="priority", max_updates=4000
        ).run(initial=data.graph.vertices())
        # Training error near the noise floor; test error close behind.
        assert training_rmse(data.graph) < 0.2
        assert test_rmse(data.graph, data.test_ratings) < 0.45

    def test_static_update_never_schedules(self):
        data = synthetic_netflix(num_users=20, num_movies=10, seed=7)
        initialize_factors(data.graph, 3, seed=2)
        update = make_als_update(d=3, dynamic=False)
        result = SequentialEngine(data.graph, update).run(
            initial=data.graph.vertices()
        )
        assert result.num_updates == data.graph.num_vertices

    def test_bipartite_two_colorable(self):
        from repro.core import bipartite_coloring, num_colors

        data = synthetic_netflix(num_users=30, num_movies=10, seed=8)
        colors = bipartite_coloring(data.graph, side_fn=data.side_fn)
        assert num_colors(colors) == 2

    def test_deterministic_generation(self):
        a = synthetic_netflix(num_users=20, num_movies=8, seed=9)
        b = synthetic_netflix(num_users=20, num_movies=8, seed=9)
        assert a.graph.num_edges == b.graph.num_edges
        assert a.test_ratings == b.test_ratings


class TestLBP:
    def test_messages_normalized_and_positive(self):
        g, psi = grid_2d(5, 5, num_labels=3, seed=10)
        update = make_lbp_update(psi, epsilon=1e-4)
        SequentialEngine(g, update, scheduler="fifo", max_updates=500).run(
            initial=g.vertices()
        )
        for (u, w) in g.edges():
            fwd, bwd = g.edge_data(u, w)
            assert fwd.sum() == pytest.approx(1.0)
            assert bwd.sum() == pytest.approx(1.0)
            assert (fwd > 0).all() and (bwd > 0).all()

    def test_converges_to_low_residual(self):
        g, psi = grid_2d(6, 6, num_labels=2, seed=11)
        update = make_lbp_update(psi, epsilon=1e-5)
        result = SequentialEngine(
            g, update, scheduler="priority", max_updates=20000
        ).run(initial=g.vertices())
        assert result.converged
        assert total_residual(g, psi) < 1e-4

    def test_strong_unary_wins_map_labels(self):
        g, psi = grid_2d(4, 4, num_labels=2, seed=12, unary_strength=4.0)
        update = make_lbp_update(psi, epsilon=1e-5)
        SequentialEngine(
            g, update, scheduler="priority", max_updates=20000
        ).run(initial=g.vertices())
        labels = map_labels(g)
        for v in g.vertices():
            unary = g.vertex_data(v)["unary"]
            if unary.max() / unary.min() > 50:  # decisive evidence
                assert labels[v] == int(np.argmax(unary))

    def test_sync_sweep_matches_message_semantics(self):
        g, psi = grid_2d(3, 3, num_labels=2, seed=13)
        r1 = synchronous_lbp_sweep(g, psi)
        r2 = synchronous_lbp_sweep(g, psi)
        assert r2 <= r1 + 1e-9  # contraction on this attractive model

    def test_get_set_message_both_directions(self):
        g, psi = grid_2d(2, 2, num_labels=2, seed=14)
        scope = Scope(g, (0, 0), model=Consistency.EDGE)
        msg = np.array([0.9, 0.1])
        set_message(scope, (0, 0), (0, 1), msg)
        got = get_message(scope, (0, 0), (0, 1))
        assert np.allclose(got, msg)
        # And the reverse direction is stored independently.
        rev = get_message(scope, (0, 1), (0, 0))
        assert np.allclose(rev, np.array([0.5, 0.5]))

    def test_mesh_3d_shapes(self):
        g, psi = mesh_3d(3, connectivity=6, seed=15)
        assert g.num_vertices == 27
        center_degree = g.degree((1, 1, 1))
        assert center_degree == 6
        g26, _ = mesh_3d(3, connectivity=26, seed=15)
        assert g26.degree((1, 1, 1)) == 26

    def test_mesh_validation(self):
        with pytest.raises(ValueError):
            mesh_3d(1)
        with pytest.raises(ValueError):
            mesh_3d(3, connectivity=8)


class TestGMMCoSeg:
    def test_gmm_separates_planted_clusters(self):
        rng = np.random.default_rng(0)
        cluster_a = rng.normal(0.0, 0.1, size=(50, 3))
        cluster_b = rng.normal(5.0, 0.1, size=(50, 3))
        gmm = initialize_gmm(list(cluster_a) + list(cluster_b), 2, seed=1)
        una = gmm.unary(np.zeros(3))
        unb = gmm.unary(np.full(3, 5.0))
        assert int(np.argmax(una)) != int(np.argmax(unb))

    def test_coseg_end_to_end_accuracy(self):
        video = synthetic_video(frames=4, rows=8, cols=12, num_labels=3, seed=5)
        setup = prepare_coseg(
            video, seed=5, sync_interval_updates=video.graph.num_vertices
        )
        engine = SequentialEngine(
            video.graph,
            setup["update_fn"],
            scheduler="priority",
            syncs=[setup["sync"]],
            initial_globals=setup["initial_globals"],
            max_updates=30000,
        )
        engine.run(initial=video.graph.vertices())
        labels = segmentation_labels(video.graph)
        acc = segmentation_accuracy(labels, video.truth, video.num_labels)
        assert acc > 0.9

    def test_accuracy_is_permutation_invariant(self):
        truth = {0: 0, 1: 1, 2: 2}
        labels = {0: 2, 1: 0, 2: 1}  # a pure relabeling
        assert segmentation_accuracy(labels, truth, 3) == 1.0

    def test_accuracy_label_limit(self):
        with pytest.raises(ValueError):
            segmentation_accuracy({0: 0}, {0: 0}, 10)

    def test_features_preserved_through_updates(self):
        video = synthetic_video(frames=2, rows=4, cols=4, num_labels=2, seed=6)
        setup = prepare_coseg(video, seed=6)
        engine = SequentialEngine(
            video.graph,
            setup["update_fn"],
            initial_globals=setup["initial_globals"],
            max_updates=50,
        )
        engine.run(initial=video.graph.vertices())
        v = next(iter(video.graph.vertices()))
        assert "features" in video.graph.vertex_data(v)


class TestCoEM:
    def test_high_accuracy_with_seeds(self):
        data = synthetic_ner(phrases_per_type=15, num_contexts=50, seed=3)
        update = make_coem_update(data.seeds)
        result = SequentialEngine(
            data.graph, update, scheduler="fifo", max_updates=100000
        ).run(initial=data.graph.vertices())
        assert result.converged
        labels = phrase_labels(data.graph)
        assert labeling_accuracy(labels, data.truth) > 0.85

    def test_seeds_stay_clamped(self):
        data = synthetic_ner(phrases_per_type=10, num_contexts=30, seed=4)
        update = make_coem_update(data.seeds)
        SequentialEngine(
            data.graph, update, max_updates=5000
        ).run(initial=data.graph.vertices())
        for seed_vertex, seed_type in data.seeds.items():
            dist = data.graph.vertex_data(seed_vertex)
            assert dist[seed_type] == 1.0

    def test_distributions_normalized(self):
        data = synthetic_ner(phrases_per_type=8, num_contexts=24, seed=5)
        update = make_coem_update(data.seeds)
        SequentialEngine(
            data.graph, update, max_updates=3000
        ).run(initial=data.graph.vertices())
        for v in data.graph.vertices():
            assert data.graph.vertex_data(v).sum() == pytest.approx(1.0)

    def test_top_words_structure(self):
        data = synthetic_ner(phrases_per_type=10, num_contexts=30, seed=6)
        top = top_words_per_type(data.graph, data.types, k=3)
        assert set(top) == set(data.types)
        for words in top.values():
            assert len(words) == 3
            assert all(isinstance(w, str) for (w, _s) in words)
