"""Shared-memory data plane + color-merged rounds (ISSUE 4).

The two halves of the runtime's near-zero-communication story, tested
against the one property that matters: **bit-identity to the sequential
oracle by construction** —

* the data plane (shared columns + double-buffered dirty rings, or the
  inproc in-process emulation) must be semantically indistinguishable
  from the pickled ``FlatEntries`` wire, including ring overflow and
  the ``REPRO_NO_SHM`` fallback;
* merged rounds must commit only executions the
  ``SequentialEngine`` + ``ColorSweepScheduler`` oracle would have
  performed identically — speculative tails roll back whenever
  mid-round scheduling or a cross-worker conflict would have diverged,
  and a merge-incompatible configuration must refuse to merge, not
  diverge;
* shared segments must never leak into ``/dev/shm``, on any exit path.
"""

import os
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Consistency,
    SequentialEngine,
    greedy_coloring,
    second_order_coloring,
)
from repro.core.coloring import (
    color_classes,
    frontiers_independent,
    merge_compatible_matrix,
    model_distance,
)
from repro.core.graph import DataGraph
from repro.errors import EngineError
from repro.runtime import (
    ColorSweepScheduler,
    MpTransport,
    RuntimeChromaticEngine,
    UpdateProgram,
    WorkerFailure,
    shm_available,
)
from repro.runtime.plane import NO_SHM_ENV
from repro.runtime.worker import empty_inbox

from tests.helpers import grid_graph, ring_graph


needs_shm = pytest.mark.skipif(
    not shm_available(),
    reason="POSIX shared memory unavailable (or disabled via REPRO_NO_SHM)",
)


# ----------------------------------------------------------------------
# Update functions (module-level: they cross process boundaries).
# ----------------------------------------------------------------------
def flood_max(scope):
    best = scope.data
    for u in scope.neighbors:
        best = max(best, scope.neighbor(u))
    if best != scope.data:
        scope.data = best
        return [(u, best) for u in scope.neighbors]


def edge_accumulate(scope):
    """Edge-writing update (legal under EDGE/FULL)."""
    total = scope.data
    for (a, b) in scope.adjacent_edges():
        total += scope.edge(a, b)
    for (a, b) in scope.adjacent_edges():
        scope.set_edge(a, b, scope.edge(a, b) + 1.0)
    if total != scope.data:
        scope.data = total
    return None


def vertex_only_max(scope):
    """Writes D_v only (legal under every model, incl. VERTEX)."""
    best = scope.data
    for u in scope.neighbors:
        best = max(best, scope.neighbor(u))
    if best != scope.data:
        scope.data = best
        return list(scope.neighbors)
    return None


def push_to_neighbors(scope):
    """FULL-consistency ghost-write update."""
    share = scope.data
    if share:
        for u in scope.neighbors:
            scope.set_neighbor(u, scope.neighbor(u) + share)
        scope.data = 0.0
        return list(scope.neighbors)
    return None


def decay_and_spread(scope):
    """Schedules neighbors only while energy remains — produces the
    shrinking, wandering frontiers merged rounds feed on."""
    value = scope.data
    if value >= 1.0:
        scope.data = value - 1.0
        return list(scope.neighbors)
    return None


def broken_factory():
    raise RuntimeError("factory exploded on purpose")


def spec_abort_self_resched(scope):
    """Regression shape for the rollback-ordering bug: vertex 0 forces
    an abort of the speculative color-1 part (fresh *remote* schedule
    into the span) exactly while vertex 1 — executing speculatively —
    reschedules itself, landing in both the part's executed frontier
    and its fresh-schedule log."""
    value = scope.data
    scope.data = value + 1.0
    if scope.vertex == 0 and value == 0.0:
        return [2]
    if scope.vertex == 1 and value < 2.0:
        return [1]
    return None


def typed_random_graph(num_vertices, num_edges, seed):
    """Seeded random digraph compiled onto float64 data columns."""
    rng = random.Random(seed)
    g = DataGraph()
    for i in range(num_vertices):
        g.add_vertex(i, data=float(rng.randrange(8)))
    added = set()
    attempts = 0
    while len(added) < num_edges and attempts < num_edges * 10:
        attempts += 1
        a = rng.randrange(num_vertices)
        b = rng.randrange(num_vertices)
        if a != b and (a, b) not in added:
            added.add((a, b))
            g.add_edge(a, b, data=float(rng.randrange(4)))
    return g.finalize(vertex_dtype=float, edge_dtype=float)


def graph_values(graph):
    vdata = {v: graph.vertex_data(v) for v in graph.vertices()}
    edata = {key: graph.edge_data(*key) for key in graph.edges()}
    return vdata, edata


def run_oracle(graph, fn, coloring, consistency=Consistency.EDGE,
               max_updates=None):
    engine = SequentialEngine(
        graph,
        fn,
        consistency=consistency,
        scheduler=ColorSweepScheduler(coloring),
        max_updates=max_updates,
        use_kernel=False,
    )
    return engine.run(initial=graph.vertices())


# ----------------------------------------------------------------------
# Static merge analysis.
# ----------------------------------------------------------------------
class TestMergeAnalysis:
    def test_static_matrix_edge_consistency(self):
        # Path 0-1-2-3 with colors [0, 1, 0, 2]: classes 1 and 2 touch
        # (edge 1-2? no: 1 has color 1, 2 has color 0). Conflicts: 0-1
        # (colors 0,1), 1-2 (1,0), 2-3 (0,2). Pair (1,2) never touches.
        g = DataGraph()
        for i in range(4):
            g.add_vertex(i, data=0.0)
        for i in range(3):
            g.add_edge(i, i + 1)
        g.finalize()
        coloring = {0: 0, 1: 1, 2: 0, 3: 2}
        classes = color_classes(coloring)
        compat = merge_compatible_matrix(g, classes, Consistency.EDGE)
        assert not compat[0, 1] and not compat[0, 2]
        assert compat[1, 2] and compat[2, 1]
        assert not compat.diagonal().any()

    def test_static_matrix_full_needs_distance_two(self):
        # Same path: colors 1 and 2 are distance 2 apart (1 - 2 - 3), so
        # full consistency must reject the pair edge consistency allows.
        g = DataGraph()
        for i in range(4):
            g.add_vertex(i, data=0.0)
        for i in range(3):
            g.add_edge(i, i + 1)
        g.finalize()
        coloring = {0: 0, 1: 1, 2: 0, 3: 2}
        classes = color_classes(coloring)
        compat = merge_compatible_matrix(g, classes, Consistency.FULL)
        assert not compat[1, 2]

    def test_frontier_independence_distances(self):
        g = DataGraph()
        for i in range(5):
            g.add_vertex(i, data=0.0)
        for i in range(4):
            g.add_edge(i, i + 1)
        g.finalize()
        csr = g.compiled
        a = np.zeros(5, dtype=bool)
        b = np.zeros(5, dtype=bool)
        a[0] = True
        b[2] = True  # distance 2 from vertex 0
        assert frontiers_independent(csr, a, b, 1)
        assert not frontiers_independent(csr, a, b, 2)
        # A cross-worker mask that exempts every edge kills the conflict.
        b[:] = False
        b[1] = True  # adjacent to 0
        same_worker = np.zeros(csr.edge_src_index.size, dtype=bool)
        assert not frontiers_independent(csr, a, b, 1)
        assert frontiers_independent(csr, a, b, 1, edge_mask=same_worker)

    def test_model_distance(self):
        assert model_distance(Consistency.VERTEX) == 1
        assert model_distance(Consistency.EDGE) == 1
        assert model_distance(Consistency.FULL) == 2


# ----------------------------------------------------------------------
# Bit-identity of the plane + merged rounds (the load-bearing property).
# ----------------------------------------------------------------------
class TestPlaneEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_typed_inproc_matches_oracle(self, workers):
        g = typed_random_graph(18, 40, seed=11)
        coloring = greedy_coloring(g)
        g1, g2 = g.copy(), g.copy()
        r1 = run_oracle(g1, flood_max, coloring)
        engine = RuntimeChromaticEngine(
            g2, flood_max, num_workers=workers, transport="inproc",
            coloring=coloring,
        )
        r2 = engine.run(initial=g2.vertices())
        assert engine._plane is not None  # the plane really was active
        assert r2.data_plane == "local"
        assert r1.updates_per_vertex == r2.updates_per_vertex
        assert graph_values(g1) == graph_values(g2)

    @needs_shm
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_typed_mp_matches_oracle(self, workers):
        g = typed_random_graph(16, 36, seed=3)
        coloring = greedy_coloring(g)
        g1, g2 = g.copy(), g.copy()
        r1 = run_oracle(g1, flood_max, coloring)
        r2 = RuntimeChromaticEngine(
            g2, flood_max, num_workers=workers, transport="mp",
            coloring=coloring,
        ).run(initial=g2.vertices())
        assert r2.data_plane == "shm"
        assert r1.updates_per_vertex == r2.updates_per_vertex
        assert graph_values(g1) == graph_values(g2)

    @given(
        seed=st.integers(0, 10_000),
        num_workers=st.integers(1, 4),
        model=st.sampled_from(
            [Consistency.VERTEX, Consistency.EDGE, Consistency.FULL]
        ),
    )
    @settings(max_examples=15, deadline=None)
    def test_bit_identical_across_models(self, seed, num_workers, model):
        """Plane + merged rounds vs the oracle, across every model.

        Mirrors the PR 2 property test but on typed columns (plane
        active) with merging on — the exact configurations the tentpole
        changes. Caps may bind mid-sweep on the runtime side, in which
        case the oracle replayed to the same executed count must agree.
        """
        rng = random.Random(seed)
        n = rng.randrange(5, 16)
        g = typed_random_graph(n, num_edges=2 * n, seed=seed)
        coloring = (
            second_order_coloring(g)
            if model is Consistency.FULL
            else greedy_coloring(g)
        )
        fn = (
            vertex_only_max
            if model is Consistency.VERTEX
            else (push_to_neighbors if model is Consistency.FULL
                  else edge_accumulate)
        )
        cap = 4 * n
        g1, g2 = g.copy(), g.copy()
        r1 = run_oracle(g1, fn, coloring, consistency=model, max_updates=cap)
        r2 = RuntimeChromaticEngine(
            g2,
            fn,
            num_workers=num_workers,
            transport="inproc",
            consistency=model,
            coloring=coloring,
            partitioner="hash",
            max_updates=cap,
        ).run(initial=g2.vertices())
        if r1.converged and r2.converged:
            assert r1.updates_per_vertex == r2.updates_per_vertex
            assert graph_values(g1) == graph_values(g2)
        else:
            g3 = g.copy()
            run_oracle(
                g3, fn, coloring, consistency=model,
                max_updates=r2.num_updates,
            )
            assert graph_values(g3) == graph_values(g2)

    def test_ring_overflow_falls_back_to_pipe(self):
        """A 1-entry ring forces the overflow contract every round."""
        g = typed_random_graph(14, 30, seed=9)
        coloring = greedy_coloring(g)
        g1, g2 = g.copy(), g.copy()
        r1 = run_oracle(g1, flood_max, coloring)
        r2 = RuntimeChromaticEngine(
            g2, flood_max, num_workers=3, transport="inproc",
            coloring=coloring, plane_ring_cap=1,
        ).run(initial=g2.vertices())
        assert r1.updates_per_vertex == r2.updates_per_vertex
        assert graph_values(g1) == graph_values(g2)

    def test_plane_off_matches_plane_on(self):
        g = typed_random_graph(15, 32, seed=21)
        coloring = greedy_coloring(g)
        results = {}
        for use_plane in (False, True):
            copy = g.copy()
            engine = RuntimeChromaticEngine(
                copy, flood_max, num_workers=2, transport="inproc",
                coloring=coloring, use_plane=use_plane,
            )
            run = engine.run(initial=copy.vertices())
            results[use_plane] = (run.updates_per_vertex, graph_values(copy))
            if not use_plane:
                assert engine._plane is None and run.data_plane is None
        assert results[False] == results[True]

    def test_plane_shrinks_pipe_bytes(self):
        """The point of the plane, measured: same run, fewer pipe bytes."""
        g = typed_random_graph(60, 200, seed=5)
        coloring = greedy_coloring(g)
        byte_counts = {}
        for use_plane in (False, True):
            copy = g.copy()
            run = RuntimeChromaticEngine(
                copy, flood_max, num_workers=3, transport="inproc",
                coloring=coloring, use_plane=use_plane, merge_rounds=False,
            ).run(initial=copy.vertices())
            byte_counts[use_plane] = run.bytes_on_pipe
        assert byte_counts[True] < byte_counts[False]

    def test_untyped_graph_gets_no_plane(self):
        g = grid_graph(4, 4)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport="inproc",
        )
        run = engine.run(initial=g.vertices())
        assert engine._plane is None and run.data_plane is None

    def test_vertex_only_typed_columns(self):
        """Partial plane: typed vertex column, object edge data."""
        rng = random.Random(4)
        g = DataGraph()
        for i in range(10):
            g.add_vertex(i, data=float(rng.randrange(5)))
        for i in range(10):
            g.add_edge(i, (i + 3) % 10)
        g.finalize(vertex_dtype=float)
        coloring = greedy_coloring(g)
        g1, g2 = g.copy(), g.copy()
        r1 = run_oracle(g1, vertex_only_max, coloring)
        engine = RuntimeChromaticEngine(
            g2, vertex_only_max, num_workers=2, transport="inproc",
            coloring=coloring,
        )
        r2 = engine.run(initial=g2.vertices())
        assert engine._plane is not None
        assert engine._plane.spec.has_v and not engine._plane.spec.has_e
        assert r1.updates_per_vertex == r2.updates_per_vertex
        assert graph_values(g1) == graph_values(g2)


# ----------------------------------------------------------------------
# Merged rounds: refusal, commits, and the speculative abort path.
# ----------------------------------------------------------------------
class TestColorMergedRounds:
    def test_merge_refuses_on_touching_frontiers(self):
        """Merge-incompatible configuration: alternating ring ownership
        makes every edge cross-worker, and the 2-coloring's frontiers
        are the two alternating classes — always adjacent. The planner
        must refuse every merge (and stay bit-identical), not diverge.
        """
        g = ring_graph(8)
        g.set_vertex_data(0, 9.0)
        coloring = {v: i % 2 for i, v in enumerate(g.vertices())}
        assignment = {v: i % 2 for i, v in enumerate(g.vertices())}
        g1, g2 = g.copy(), g.copy()
        r1 = run_oracle(g1, flood_max, coloring)
        r2 = RuntimeChromaticEngine(
            g2, flood_max, num_workers=2, transport="inproc",
            coloring=coloring, assignment=assignment,
        ).run(initial=g2.vertices())
        assert r2.rounds_saved == 0  # refused, every color got a barrier
        assert r1.updates_per_vertex == r2.updates_per_vertex
        assert graph_values(g1) == graph_values(g2)

    def test_single_worker_merges_whole_sweeps(self):
        """With one worker nothing is cross-worker: merged rounds run
        each sweep's nonempty colors in one barrier, in oracle order."""
        g = typed_random_graph(20, 50, seed=13)
        coloring = greedy_coloring(g)
        g1, g2 = g.copy(), g.copy()
        r1 = run_oracle(g1, flood_max, coloring)
        r2 = RuntimeChromaticEngine(
            g2, flood_max, num_workers=1, transport="inproc",
            coloring=coloring,
        ).run(initial=g2.vertices())
        assert r2.rounds_saved > 0
        assert r1.updates_per_vertex == r2.updates_per_vertex
        assert graph_values(g1) == graph_values(g2)

    def test_merged_vs_unmerged_identical(self):
        """Merging is a pure round-count optimization: every observable
        output matches a merge-disabled run of the same configuration."""
        g = typed_random_graph(24, 60, seed=17)
        g.set_vertex_data(0, 50.0)
        coloring = greedy_coloring(g)
        outcomes = {}
        for merge in (False, True):
            copy = g.copy()
            run = RuntimeChromaticEngine(
                copy, decay_and_spread, num_workers=2, transport="inproc",
                coloring=coloring, merge_rounds=merge,
            ).run(initial=copy.vertices())
            outcomes[merge] = (
                run.num_updates, run.updates_per_vertex, graph_values(copy)
            )
            if not merge:
                assert run.rounds_saved == 0
        assert outcomes[False] == outcomes[True]

    def test_abort_path_restores_oracle_order(self):
        """Force the speculative abort: schedule only colors 0 and 2 of
        a 3-colored path, so the planner merges them, then let the
        updates schedule the intervening color-1 vertices mid-round.
        The abort must roll the color-2 step back and re-run it after
        color 1 — i.e. results must still equal the oracle's.
        """
        g = DataGraph()
        for i in range(9):
            g.add_vertex(i, data=float(9 - i))
        for i in range(8):
            g.add_edge(i, i + 1)
        g.finalize()
        coloring = {i: i % 3 for i in range(9)}
        initial = [i for i in range(9) if i % 3 != 1]  # colors 0 and 2
        g1, g2 = g.copy(), g.copy()
        r1 = SequentialEngine(
            g1, flood_max, scheduler=ColorSweepScheduler(coloring),
        ).run(initial=list(initial))
        aborts = []
        engine = RuntimeChromaticEngine(
            g2, flood_max, num_workers=1, transport="inproc",
            coloring=coloring,
        )
        original = engine._process_replies

        def counting(replies, group, mask, inboxes):
            updates, aborted = original(replies, group, mask, inboxes)
            if aborted:
                aborts.append(len(group))
            return updates, aborted

        engine._process_replies = counting
        r2 = engine.run(initial=list(initial))
        assert aborts, "expected at least one speculative abort"
        assert r1.updates_per_vertex == r2.updates_per_vertex
        assert graph_values(g1) == graph_values(g2)

    @pytest.mark.parametrize("use_kernel", [False])
    def test_abort_keeps_self_rescheduled_vertex(self, use_kernel):
        """A vertex that reschedules itself during a rolled-back
        speculative part sits in both the part's frontier and its
        fresh-schedule log; rollback must leave it *scheduled* (the
        frontier state — the self-reschedule never happened). Regression
        for the rollback ordering that silently dropped its updates.
        """
        g = DataGraph()
        for i in range(3):
            g.add_vertex(i, data=0.0)
        g.finalize()  # no edges: every frontier pair is independent
        coloring = {0: 0, 1: 1, 2: 1}
        assignment = {0: 0, 1: 1, 2: 1}  # vertex 2 is remote to worker 0
        g1, g2 = g.copy(), g.copy()
        r1 = SequentialEngine(
            g1,
            spec_abort_self_resched,
            scheduler=ColorSweepScheduler(coloring),
            use_kernel=use_kernel,
        ).run(initial=[0, 1])
        r2 = RuntimeChromaticEngine(
            g2,
            spec_abort_self_resched,
            num_workers=2,
            transport="inproc",
            coloring=coloring,
            assignment=assignment,
            use_kernel=use_kernel,
        ).run(initial=[0, 1])
        assert r1.num_updates == r2.num_updates
        assert r1.updates_per_vertex == r2.updates_per_vertex
        assert graph_values(g1) == graph_values(g2)

    @given(seed=st.integers(0, 10_000), num_workers=st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_dynamic_frontiers_bit_identical(self, seed, num_workers):
        """Shrinking/wandering frontiers (the merge-friendly regime)
        stay bit-identical through commits and aborts alike."""
        rng = random.Random(seed)
        n = rng.randrange(6, 20)
        g = typed_random_graph(n, num_edges=2 * n, seed=seed)
        g.set_vertex_data(rng.randrange(n), float(3 * n))
        coloring = greedy_coloring(g)
        g1, g2 = g.copy(), g.copy()
        r1 = run_oracle(g1, decay_and_spread, coloring)
        r2 = RuntimeChromaticEngine(
            g2, decay_and_spread, num_workers=num_workers,
            transport="inproc", coloring=coloring,
        ).run(initial=g2.vertices())
        assert r1.num_updates == r2.num_updates
        assert r1.updates_per_vertex == r2.updates_per_vertex
        assert graph_values(g1) == graph_values(g2)


# ----------------------------------------------------------------------
# Lifecycle: worker death, shm cleanup, REPRO_NO_SHM fallback.
# ----------------------------------------------------------------------
def _repro_segments():
    try:
        return {
            name for name in os.listdir("/dev/shm")
            if name.startswith("repro-plane-")
        }
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


class TestLifecycle:
    @needs_shm
    def test_worker_death_is_diagnosed_not_hung(self):
        """Kill a worker mid-run: the next round must raise a
        WorkerFailure naming the worker and its last command, shutdown
        must return promptly, and the shm segments must be unlinked."""
        g = typed_random_graph(12, 24, seed=2)
        transport = MpTransport(2, reply_timeout=10.0)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport=transport,
            coloring=greedy_coloring(g),
        )
        engine._provision_plane()
        names = set(engine._plane.spec.names)
        transport.launch(engine._encoded_inits())
        assert _repro_segments() >= {n.lstrip("/") for n in names}
        transport._procs[0].terminate()
        transport._procs[0].join(timeout=5.0)
        with pytest.raises(WorkerFailure) as info:
            transport.round(
                [("sync_count", {"inbox": empty_inbox()})] * 2
            )
        message = str(info.value)
        assert "worker 0" in message
        assert "sync_count" in message
        transport.shutdown()  # must not block on the dead pipe
        assert not (_repro_segments() & {n.lstrip("/") for n in names})

    @needs_shm
    def test_shm_cleaned_after_successful_run(self):
        g = typed_random_graph(12, 24, seed=6)
        engine = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport="mp",
            coloring=greedy_coloring(g),
        )
        engine.run(initial=g.vertices())
        spec = engine._plane.spec
        assert spec.kind == "shm"
        assert not (
            _repro_segments() & {n.lstrip("/") for n in spec.names}
        )

    @needs_shm
    def test_shm_cleaned_when_launch_fails(self):
        g = typed_random_graph(10, 20, seed=8)
        engine = RuntimeChromaticEngine(
            g, UpdateProgram(broken_factory), num_workers=2,
            transport="mp", coloring=greedy_coloring(g),
        )
        with pytest.raises((WorkerFailure, EngineError)):
            engine.run(initial=g.vertices())
        spec = engine._plane.spec
        assert not (
            _repro_segments() & {n.lstrip("/") for n in spec.names}
        )

    def test_no_shm_env_forces_pipe_wire(self, monkeypatch):
        monkeypatch.setenv(NO_SHM_ENV, "1")
        assert not shm_available()
        g = typed_random_graph(12, 24, seed=12)
        coloring = greedy_coloring(g)
        g1, g2 = g.copy(), g.copy()
        r1 = run_oracle(g1, flood_max, coloring)
        engine = RuntimeChromaticEngine(
            g2, flood_max, num_workers=2, transport="mp",
            coloring=coloring,
        )
        r2 = engine.run(initial=g2.vertices())
        assert engine._plane is None and r2.data_plane is None
        assert r1.updates_per_vertex == r2.updates_per_vertex
        assert graph_values(g1) == graph_values(g2)

    def test_counters_are_recorded(self):
        g = typed_random_graph(12, 24, seed=14)
        run = RuntimeChromaticEngine(
            g, flood_max, num_workers=2, transport="inproc",
            coloring=greedy_coloring(g),
        ).run(initial=g.vertices())
        assert run.rounds > 0
        assert run.bytes_on_pipe > 0
        assert run.rounds_per_sweep > 0
