"""Unit tests for the shared liveness module (PR 9 satellite).

The EMA/clamp arithmetic was pinned only end-to-end before the
extraction; these tests pin it directly, plus the retry-policy
determinism and the heartbeat pump's busy-bracket behavior, so the
pipe and socket backends share one verified implementation.
"""

import threading
import time

import pytest

from repro.runtime import AdaptiveDeadline, HeartbeatPump, MpTransport, RetryPolicy


class TestAdaptiveDeadline:
    def test_cap_until_first_observation(self):
        d = AdaptiveDeadline(floor=30.0, slack=8.0, cap=120.0)
        assert d.ema is None
        assert d.current() == 120.0

    def test_first_observation_seeds_ema(self):
        d = AdaptiveDeadline(floor=30.0, slack=8.0, cap=120.0)
        d.observe(0.5)
        assert d.ema == 0.5

    def test_ema_blend_is_point_two(self):
        d = AdaptiveDeadline(floor=30.0, slack=8.0, cap=120.0)
        d.observe(1.0)
        d.observe(2.0)
        assert abs(d.ema - (0.2 * 2.0 + 0.8 * 1.0)) < 1e-12

    def test_floor_clamp(self):
        d = AdaptiveDeadline(floor=30.0, slack=8.0, cap=120.0)
        d.observe(0.01)  # 0.08s of slack, far under the floor
        assert d.current() == 30.0

    def test_slack_multiply_between_clamps(self):
        d = AdaptiveDeadline(floor=30.0, slack=8.0, cap=120.0)
        d.ema = 10.0
        assert d.current() == 80.0

    def test_cap_clamp(self):
        d = AdaptiveDeadline(floor=30.0, slack=8.0, cap=120.0)
        d.ema = 1000.0
        assert d.current() == 120.0

    def test_mp_transport_delegates(self):
        """The transport surface (`reply_deadline`, `_observe_round`,
        settable `_round_ema`) is a view into one shared deadline."""
        t = MpTransport(1)
        assert t.reply_deadline() == t.reply_timeout
        t._observe_round(1.0)
        t._observe_round(2.0)
        assert abs(t._round_ema - 1.2) < 1e-12
        t._round_ema = 10.0
        assert t._deadline.ema == 10.0
        assert t.reply_deadline() == 80.0


class TestRetryPolicy:
    def test_deterministic_per_seed(self):
        p = RetryPolicy(attempts=5, base=0.05, factor=2.0, cap=1.0)
        a = [p.delay(i, seed="w0") for i in range(5)]
        b = [p.delay(i, seed="w0") for i in range(5)]
        assert a == b
        c = [p.delay(i, seed="w1") for i in range(5)]
        assert a != c  # distinct seeds de-synchronize retries

    def test_exponential_growth_and_cap_without_jitter(self):
        p = RetryPolicy(attempts=6, base=0.05, factor=2.0, cap=0.5, jitter=0.0)
        delays = [p.delay(i) for i in range(6)]
        assert delays[:4] == [0.05, 0.1, 0.2, 0.4]
        assert delays[4] == delays[5] == 0.5

    def test_jitter_bounds(self):
        p = RetryPolicy(attempts=4, base=0.1, factor=2.0, cap=10.0, jitter=0.25)
        for i in range(4):
            raw = min(0.1 * 2.0 ** i, 10.0)
            d = p.delay(i, seed="x")
            assert raw * 0.75 <= d <= raw * 1.25

    def test_total_sums_the_budget(self):
        p = RetryPolicy(attempts=3, base=0.1, factor=2.0, cap=1.0, jitter=0.0)
        assert p.total() == pytest.approx(0.1 + 0.2 + 0.4)


class TestHeartbeatPump:
    def _wait_for(self, cond, timeout=2.0):
        end = time.monotonic() + timeout
        while time.monotonic() < end:
            if cond():
                return True
            time.sleep(0.005)
        return False

    def test_beats_only_while_busy(self):
        beats = []
        pump = HeartbeatPump(lambda: beats.append(time.monotonic()), 0.01)
        try:
            time.sleep(0.1)
            assert beats == []  # idle: no reply owed, nobody waiting
            pump.begin()
            assert self._wait_for(lambda: len(beats) >= 3)
            pump.end()
            time.sleep(0.05)
            settled = len(beats)
            time.sleep(0.1)
            assert len(beats) <= settled + 1  # at most one straggler
        finally:
            pump.stop()

    def test_stop_joins_the_thread(self):
        pump = HeartbeatPump(lambda: None, 0.01)
        pump.begin()
        pump.stop()
        assert not pump._thread.is_alive()

    def test_send_error_ends_the_pump(self):
        calls = []

        def send():
            calls.append(1)
            raise OSError("pipe gone")

        pump = HeartbeatPump(send, 0.01)
        pump.begin()
        assert self._wait_for(lambda: not pump._thread.is_alive())
        assert len(calls) == 1
