"""Batch kernel tests: typed columns, segment primitives, and the
kernel/interpreter bit-identity contract (ISSUE 3).

The load-bearing property: a batch kernel is the *same* update function
as the scalar closure it rides on, evaluated as numpy passes over an
independent frontier — so every engine that dispatches to it
(``SequentialEngine`` on a color-sweep drive, the simulated
``ChromaticEngine`` on slot-addressed stores, ``RuntimeChromaticEngine``
at any worker count) must produce results **bit-identical** to the
scalar interpreter, which remains the oracle. Every comparison here is
exact equality, never approx.
"""

import pickle
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Consistency,
    SequentialEngine,
    constant_coloring,
    greedy_coloring,
    kernel_of,
    second_order_coloring,
)
from repro.core.graph import DataGraph
from repro.core.kernels import (
    ordered_segment_add,
    ordered_segment_mul,
    segment_positions,
)
from repro.apps.lbp import make_lbp_update_typed, potts_potential
from repro.datasets.mesh import grid_2d_typed
from repro.apps.pagerank import make_pagerank_update
from repro.distributed import (
    ChromaticEngine,
    DataSizeModel,
    constant_cost,
    deploy,
)
from repro.distributed.deploy import plan_ownership
from repro.errors import GraphStructureError
from repro.runtime import (
    ColorSweepScheduler,
    CSRShardStore,
    RuntimeChromaticEngine,
    UpdateProgram,
)

from tests.helpers import grid_graph


# ----------------------------------------------------------------------
# Workload builders.
# ----------------------------------------------------------------------
def typed_pagerank_graph(n=60, edges_factor=3, seed=7):
    """Seeded random digraph with 1/out-degree weights, typed columns."""
    rng = random.Random(seed)
    g = DataGraph()
    for i in range(n):
        g.add_vertex(i, data=1.0 / n)
    edges = set()
    attempts = 0
    while len(edges) < edges_factor * n and attempts < 30 * n:
        attempts += 1
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            edges.add((a, b))
    out_count = {}
    for (a, _b) in edges:
        out_count[a] = out_count.get(a, 0) + 1
    for (a, b) in sorted(edges):
        g.add_edge(a, b, data=1.0 / out_count[a])
    return g.finalize(vertex_dtype=float, edge_dtype=float)


def typed_lbp_grid(rows=6, cols=6, labels=3, seed=3):
    graph, _psi = grid_2d_typed(rows, cols, labels, seed=seed, smoothing=1.5)
    return graph


def graph_values(graph):
    vdata = {v: graph.vertex_data(v) for v in graph.vertices()}
    edata = {key: graph.edge_data(*key) for key in graph.edges()}
    return vdata, edata


def assert_identical_data(g1, g2):
    """Exact per-datum equality, array-valued data included."""
    for v in g1.vertices():
        a, b = g1.vertex_data(v), g2.vertex_data(v)
        assert np.array_equal(np.asarray(a), np.asarray(b)), v
    for key in g1.edges():
        a, b = g1.edge_data(*key), g2.edge_data(*key)
        assert np.array_equal(np.asarray(a), np.asarray(b)), key


# ----------------------------------------------------------------------
# Typed columns on CSRGraph.
# ----------------------------------------------------------------------
class TestTypedColumns:
    def test_finalize_compiles_numpy_columns(self):
        g = typed_pagerank_graph()
        csr = g.compiled
        assert isinstance(csr.vdata, np.ndarray)
        assert csr.vdata.dtype == np.float64
        assert csr.vertex_column is csr.vdata
        assert csr.edge_column is csr.edata
        # Scalar data API is unchanged.
        first = next(iter(g.vertices()))
        assert g.vertex_data(first) == 1.0 / g.num_vertices
        g.set_vertex_data(first, 0.5)
        assert g.vertex_data(first) == 0.5

    def test_untyped_graph_has_no_columns(self):
        g = grid_graph(3, 3)
        assert g.compiled.vertex_column is None
        assert g.compiled.edge_column is None

    def test_shaped_columns_default_to_zeros(self):
        g = DataGraph()
        g.add_vertex(0)
        g.add_vertex(1, data=[[1.0, 2.0], [3.0, 4.0]])
        g.add_edge(0, 1)
        g.finalize(vertex_dtype=float, vertex_shape=(2, 2))
        assert np.array_equal(g.vertex_data(0), np.zeros((2, 2)))
        assert np.array_equal(
            g.vertex_data(1), np.array([[1.0, 2.0], [3.0, 4.0]])
        )

    def test_incompatible_data_fails_at_finalize(self):
        g = DataGraph()
        g.add_vertex(0, data="not a number")
        with pytest.raises(GraphStructureError):
            g.finalize(vertex_dtype=float)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_dtype_roundtrips_through_pickle(self, seed):
        """Property: typed columns survive CSRGraph.__getstate__ —
        dtype, shape, and exact values (ISSUE 3 satellite)."""
        g = typed_pagerank_graph(n=12 + seed % 20, seed=seed)
        clone = pickle.loads(pickle.dumps(g))
        csr, csr2 = g.compiled, clone.compiled
        assert isinstance(csr2.vdata, np.ndarray)
        assert csr2.vdata.dtype == csr.vdata.dtype
        assert csr2.edata.dtype == csr.edata.dtype
        assert np.array_equal(csr2.vdata, csr.vdata)
        assert np.array_equal(csr2.edata, csr.edata)
        # Structure plans are process-local, like the other memo caches.
        assert csr2.plan_cache == {}

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_copies_share_structure_but_not_columns(self, seed):
        """Property: DataGraph.copy() on a typed graph clones the data
        columns (independent buffers) while sharing every structure
        array and memo cache (ISSUE 3 satellite)."""
        g = typed_pagerank_graph(n=12 + seed % 20, seed=seed)
        other = g.copy()
        csr, csr2 = g.compiled, other.compiled
        assert csr2.vdata is not csr.vdata
        assert csr2.edata is not csr.edata
        assert csr2.out_offsets is csr.out_offsets
        assert csr2.in_sources is csr.in_sources
        assert csr2.plan_cache is csr.plan_cache
        assert csr2.bind_cache is csr.bind_cache
        first = next(iter(g.vertices()))
        g.set_vertex_data(first, 123.0)
        assert other.vertex_data(first) != 123.0


# ----------------------------------------------------------------------
# Segment primitives.
# ----------------------------------------------------------------------
class TestSegmentPrimitives:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_ordered_add_matches_scalar_loop(self, seed):
        rng = np.random.default_rng(seed)
        counts = rng.integers(0, 9, size=rng.integers(1, 12))
        offsets = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        values = (rng.random(int(offsets[-1])) - 0.5) * np.exp(
            rng.integers(-20, 20, int(offsets[-1])).astype(float)
        )
        active = np.arange(counts.size, dtype=np.int64)
        pos, seg_counts, ends = segment_positions(offsets, active)
        base = rng.random(counts.size)
        expected = base.copy()
        for i in range(counts.size):
            acc = expected[i]
            for k in range(offsets[i], offsets[i + 1]):
                acc = acc + values[k]
            expected[i] = acc
        ordered_segment_add(base, seg_counts, ends, values[pos])
        assert np.array_equal(base, expected)

    def test_ordered_mul_rows(self):
        rng = np.random.default_rng(0)
        offsets = np.array([0, 2, 2, 5], dtype=np.int64)
        factors = rng.random((5, 3)) * 1.7
        active = np.array([0, 1, 2], dtype=np.int64)
        pos, counts, ends = segment_positions(offsets, active)
        base = rng.random((3, 3))
        expected = base.copy()
        for i, (lo, hi) in enumerate(zip(offsets[:-1], offsets[1:])):
            acc = expected[i].copy()
            for k in range(lo, hi):
                acc = acc * factors[k]
            expected[i] = acc
        ordered_segment_mul(base, counts, ends, factors[pos])
        assert np.array_equal(base, expected)

    def test_segment_positions_subset(self):
        offsets = np.array([0, 3, 3, 7, 9], dtype=np.int64)
        active = np.array([2, 0], dtype=np.int64)
        pos, counts, ends = segment_positions(offsets, active)
        assert pos.tolist() == [3, 4, 5, 6, 0, 1, 2]
        assert counts.tolist() == [4, 3]
        assert ends.tolist() == [4, 7]


# ----------------------------------------------------------------------
# Engine dispatch and bit-identity.
# ----------------------------------------------------------------------
class TestSequentialDispatch:
    def test_kernel_attached_to_factories(self):
        assert kernel_of(make_pagerank_update()) is not None
        assert (
            kernel_of(make_lbp_update_typed(potts_potential(3))) is not None
        )

    def test_untyped_graph_falls_back_to_scalar(self):
        g = typed_pagerank_graph()
        untyped = typed_pagerank_graph()
        fn = make_pagerank_update(epsilon=1e-4)
        engine = SequentialEngine(
            g, fn, scheduler=ColorSweepScheduler(greedy_coloring(g))
        )
        assert engine._batch_kernel() is not None
        # fifo scheduler: no independent frontiers -> scalar.
        assert SequentialEngine(g, fn, scheduler="fifo")._batch_kernel() is None
        # tracing -> scalar.
        assert (
            SequentialEngine(
                untyped,
                fn,
                scheduler=ColorSweepScheduler(greedy_coloring(untyped)),
                trace=True,
            )._batch_kernel()
            is None
        )

    def test_constant_coloring_refuses_kernel(self):
        """A constant coloring (legal under VERTEX consistency) is not
        an independent frontier: batch Jacobi would diverge from the
        scalar in-order execution, so every dispatch gate refuses it and
        the scalar interpreter runs instead."""
        g = typed_pagerank_graph(n=20)
        coloring = constant_coloring(g)
        fn = make_pagerank_update(epsilon=1e-3)
        engine = SequentialEngine(
            g,
            fn,
            consistency=Consistency.VERTEX,
            scheduler=ColorSweepScheduler(coloring),
        )
        assert engine._batch_kernel() is None
        g2 = g.copy()
        rt = RuntimeChromaticEngine(
            g2,
            UpdateProgram(make_pagerank_update, kwargs={"epsilon": 1e-3}),
            num_workers=2,
            transport="inproc",
            consistency=Consistency.VERTEX,
            coloring=coloring,
            max_updates=4 * g.num_vertices,
        )
        rt.run(initial=g2.vertices())

    def test_batch_equals_scalar_pagerank_with_caps(self):
        g0 = typed_pagerank_graph()
        coloring = greedy_coloring(g0)
        fn = make_pagerank_update(epsilon=1e-4)
        for cap in (None, 7, 61, 123):
            g1, g2 = g0.copy(), g0.copy()
            r1 = SequentialEngine(
                g1,
                fn,
                scheduler=ColorSweepScheduler(coloring),
                max_updates=cap,
                use_kernel=False,
            ).run(initial=g1.vertices())
            r2 = SequentialEngine(
                g2,
                fn,
                scheduler=ColorSweepScheduler(coloring),
                max_updates=cap,
            ).run(initial=g2.vertices())
            assert r1.num_updates == r2.num_updates
            assert r1.converged == r2.converged
            assert r1.updates_per_vertex == r2.updates_per_vertex
            assert graph_values(g1) == graph_values(g2)

    def test_batch_equals_scalar_lbp(self):
        g0 = typed_lbp_grid()
        coloring = greedy_coloring(g0)
        for damping in (0.0, 0.3):
            fn = make_lbp_update_typed(
                potts_potential(3, smoothing=1.5), epsilon=1e-3,
                damping=damping,
            )
            g1, g2 = g0.copy(), g0.copy()
            r1 = SequentialEngine(
                g1,
                fn,
                scheduler=ColorSweepScheduler(coloring),
                max_updates=4000,
                use_kernel=False,
            ).run(initial=g1.vertices())
            r2 = SequentialEngine(
                g2,
                fn,
                scheduler=ColorSweepScheduler(coloring),
                max_updates=4000,
            ).run(initial=g2.vertices())
            assert r1.num_updates == r2.num_updates
            assert r1.updates_per_vertex == r2.updates_per_vertex
            assert_identical_data(g1, g2)


class TestRuntimeKernelEquivalence:
    """Kernel execution on worker processes == scalar oracle, at every
    worker count and across vertex/edge/full consistency (ISSUE 3)."""

    @given(
        seed=st.integers(0, 10_000),
        num_workers=st.integers(1, 4),
        model=st.sampled_from(
            [Consistency.VERTEX, Consistency.EDGE, Consistency.FULL]
        ),
    )
    @settings(max_examples=10, deadline=None)
    def test_pagerank_bit_identical_at_every_worker_count(
        self, seed, num_workers, model
    ):
        rng = random.Random(seed)
        n = rng.randrange(6, 24)
        g = typed_pagerank_graph(n=n, edges_factor=2, seed=seed)
        # A proper (or second-order, for FULL) coloring makes the
        # chromatic order deterministic under every model — the same
        # convention as the scalar runtime property tests. (A constant
        # coloring under VERTEX is legal but racy; kernels refuse it —
        # see test_constant_coloring_refuses_kernel.)
        coloring = (
            second_order_coloring(g)
            if model is Consistency.FULL
            else greedy_coloring(g)
        )
        fn = make_pagerank_update(epsilon=1e-3)
        cap = 6 * n
        g1, g2, g3 = g.copy(), g.copy(), g.copy()
        r1 = SequentialEngine(
            g1,
            fn,
            consistency=model,
            scheduler=ColorSweepScheduler(coloring),
            max_updates=cap,
            use_kernel=False,
        ).run(initial=g1.vertices())
        r2 = RuntimeChromaticEngine(
            g2,
            UpdateProgram(make_pagerank_update, kwargs={"epsilon": 1e-3}),
            num_workers=num_workers,
            transport="inproc",
            consistency=model,
            coloring=coloring,
            partitioner="hash",
            max_updates=cap,
        ).run(initial=g2.vertices())
        # The same runtime configuration with the kernel pinned off must
        # agree too (oracle fallback really is the same function).
        r3 = RuntimeChromaticEngine(
            g3,
            UpdateProgram(make_pagerank_update, kwargs={"epsilon": 1e-3}),
            num_workers=num_workers,
            transport="inproc",
            consistency=model,
            coloring=coloring,
            partitioner="hash",
            max_updates=cap,
            use_kernel=False,
        ).run(initial=g3.vertices())
        assert r2.updates_per_vertex == r3.updates_per_vertex
        assert graph_values(g2) == graph_values(g3)
        if r1.converged and r2.converged:
            assert r1.updates_per_vertex == r2.updates_per_vertex
            assert graph_values(g1) == graph_values(g2)
        else:
            # Caps bind at different boundaries; the executed prefix
            # still agrees (same argument as the scalar runtime tests).
            g4 = g.copy()
            SequentialEngine(
                g4,
                fn,
                consistency=model,
                scheduler=ColorSweepScheduler(coloring),
                max_updates=r2.num_updates,
                use_kernel=False,
            ).run(initial=g4.vertices())
            assert graph_values(g4) == graph_values(g2)

    @given(seed=st.integers(0, 10_000), num_workers=st.integers(1, 3))
    @settings(max_examples=6, deadline=None)
    def test_lbp_bit_identical_on_processes(self, seed, num_workers):
        g = typed_lbp_grid(rows=4, cols=5, seed=seed)
        coloring = greedy_coloring(g)
        psi = potts_potential(3, smoothing=1.5)
        g1, g2 = g.copy(), g.copy()
        r1 = SequentialEngine(
            g1,
            make_lbp_update_typed(psi, epsilon=1e-2),
            scheduler=ColorSweepScheduler(coloring),
            max_updates=1500,
            use_kernel=False,
        ).run(initial=g1.vertices())
        r2 = RuntimeChromaticEngine(
            g2,
            UpdateProgram(
                make_lbp_update_typed, args=(psi,), kwargs={"epsilon": 1e-2}
            ),
            num_workers=num_workers,
            transport="inproc",
            coloring=coloring,
            max_updates=1500,
        ).run(initial=g2.vertices())
        assert r1.num_updates == r2.num_updates
        assert r1.updates_per_vertex == r2.updates_per_vertex
        assert_identical_data(g1, g2)

    def test_mp_kernel_matches_inproc_kernel(self):
        g = typed_pagerank_graph(n=50, seed=11)
        coloring = greedy_coloring(g)
        prog = UpdateProgram(make_pagerank_update, kwargs={"epsilon": 1e-4})
        results = {}
        for backend in ("inproc", "mp"):
            copy = g.copy()
            run = RuntimeChromaticEngine(
                copy,
                prog,
                num_workers=3,
                transport=backend,
                coloring=coloring,
            ).run(initial=copy.vertices())
            results[backend] = (run.updates_per_vertex, graph_values(copy))
        assert results["inproc"] == results["mp"]


class TestSimulatedChromaticKernel:
    def test_sim_engine_dispatches_on_shard_stores(self):
        g0 = typed_pagerank_graph(n=70, seed=5)
        coloring = greedy_coloring(g0)
        fn = make_pagerank_update(epsilon=1e-4)
        g1 = g0.copy()
        r1 = SequentialEngine(
            g1,
            fn,
            scheduler=ColorSweepScheduler(coloring),
            use_kernel=False,
        ).run(initial=g1.vertices())
        gathered = {}
        for use_kernel in (True, False):
            g2 = g0.copy()
            dep = deploy(g2, 3, partitioner="hash", skip_ingress_io=True)
            stores = {
                m: CSRShardStore(m, g2, dep.owner) for m in range(3)
            }
            sim = ChromaticEngine(
                dep.cluster,
                g2,
                fn,
                stores,
                dep.owner,
                constant_cost(1e6),
                DataSizeModel(16, 8),
                coloring=coloring,
                use_kernel=use_kernel,
            )
            r2 = sim.run(initial=g2.vertices())
            assert (sim._batch_kernel is not None) == use_kernel
            assert r2.num_updates == r1.num_updates
            gathered[use_kernel] = sim.gather_vertex_data()
        oracle = {v: g1.vertex_data(v) for v in g1.vertices()}
        assert gathered[True] == gathered[False] == oracle

    def test_dict_stores_fall_back_to_scalar(self):
        g = typed_pagerank_graph(n=30)
        dep = deploy(g, 2, partitioner="hash", skip_ingress_io=True)
        sim = ChromaticEngine(
            dep.cluster,
            g,
            make_pagerank_update(epsilon=1e-4),
            dep.stores,
            dep.owner,
            constant_cost(1e6),
            DataSizeModel(16, 8),
            coloring=greedy_coloring(g),
        )
        assert sim._batch_kernel is None


# ----------------------------------------------------------------------
# The zero-copy wire format.
# ----------------------------------------------------------------------
class TestArrayWireFormat:
    def _store(self, g, workers=2):
        plan = plan_ownership(g, workers, partitioner="hash")
        return CSRShardStore(0, g, plan.owner), plan

    def test_typed_dirty_batches_are_arrays(self):
        g = typed_pagerank_graph(n=24, seed=2)
        store, _plan = self._store(g, workers=3)
        for v in store.owned_vertices:
            store.set_vertex_data(v, 7.0)
        batches = store.collect_dirty_flat()
        assert batches, "boundary vertices must produce wire batches"
        for batch in batches.values():
            assert isinstance(batch.v_index, np.ndarray)
            assert isinstance(batch.v_value, np.ndarray)
            assert isinstance(batch.v_version, np.ndarray)
            assert batch.v_value.dtype == np.float64
            # Pickling carries buffers, not per-entry objects.
            clone = pickle.loads(pickle.dumps(batch))
            assert np.array_equal(clone.v_value, batch.v_value)

    def test_untyped_dirty_batches_stay_lists(self):
        g = grid_graph(4, 4)
        store, _plan = self._store(g, workers=3)
        for v in store.owned_vertices:
            store.set_vertex_data(v, 7.0)
        for batch in store.collect_dirty_flat().values():
            assert isinstance(batch.v_value, list)

    def test_typed_apply_flat_is_version_filtered(self):
        g = typed_pagerank_graph(n=24, seed=2)
        store, plan = self._store(g, workers=3)
        other = CSRShardStore(1, g, plan.owner)
        for v in other.owned_vertices:
            other.set_vertex_data(v, 9.0)
        routed = other.collect_dirty_flat().get(0)
        assert routed is not None
        before = store._vversion.copy()
        store.apply_flat(routed)
        applied = np.asarray(routed.v_index)
        assert all(store.vdata_flat[i] == 9.0 for i in applied)
        assert all(store._vversion[i] == 1 for i in applied)
        # Replay is dropped (idempotent), stale versions too.
        store.apply_flat(routed)
        assert all(store._vversion[i] == 1 for i in applied)
        assert np.array_equal(
            np.delete(store._vversion, applied), np.delete(before, applied)
        )

    def test_apply_flat_newest_duplicate_wins(self):
        """An inbox that accumulated entries across elided rounds holds
        the same slot twice; the chronologically last (highest-version)
        entry must win regardless of numpy assignment internals."""
        g = typed_pagerank_graph(n=24, seed=2)
        store, _plan = self._store(g, workers=3)
        ghost = next(iter(store.ghost_vertices))
        index = g.compiled.index_of[ghost]
        from repro.runtime.shard import FlatEntries

        batch = FlatEntries()
        batch.v_index = np.array([index, index], dtype=np.int64)
        batch.v_value = np.array([5.0, 6.0])
        batch.v_version = np.array([1, 2], dtype=np.int64)
        store.apply_flat(batch)
        assert store.vertex_data(ghost) == 6.0
        assert store.version(("v", ghost)) == 2

    def test_mixed_extend_concatenates(self):
        from repro.runtime.shard import FlatEntries

        a, b = FlatEntries(), FlatEntries()
        a.v_index = np.array([1], dtype=np.int64)
        a.v_value = np.array([2.0])
        a.v_version = np.array([1], dtype=np.int64)
        b.v_index = [4]
        b.v_value = [8.0]
        b.v_version = [2]
        a.extend(b)
        assert np.asarray(a.v_index).tolist() == [1, 4]
        assert np.asarray(a.v_value).tolist() == [2.0, 8.0]

    def test_kernel_writes_version_and_dirty_in_bulk(self):
        g = typed_pagerank_graph(n=24, seed=2)
        store, _plan = self._store(g, workers=2)
        from repro.core.kernels import KernelResult

        indices = np.array(
            [g.compiled.index_of[v] for v in store.owned_vertices[:3]],
            dtype=np.int64,
        )
        store.apply_kernel_result(KernelResult(wrote_v=indices))
        assert store.dirty_count >= 3
        for v in store.owned_vertices[:3]:
            assert store.version(("v", v)) == 1


def test_in_edge_plan_matches_gather_view():
    """The argsort-derived in-edge slot plan must agree position by
    position with the interpreter's in_gather view."""
    from repro.core.kernels import in_edge_plan

    g = typed_pagerank_graph(n=40, seed=9)
    csr = g.compiled
    plan = in_edge_plan(csr)
    expected = [
        slot for row in csr.in_gather for (_u, slot, _ui) in row
    ]
    assert plan.tolist() == expected


def test_nbr_message_plan_matches_interpreter_views():
    """The canonical-array neighbor/message plan must agree with the
    interpreter's view-derived layout position by position — CSR
    ordering, message slots, and directions."""
    from repro.core.kernels import nbr_message_plan

    g = typed_lbp_grid(rows=4, cols=5, seed=11)
    csr = g.compiled
    offsets, targets, in_slot, in_dir, out_slot, out_dir = (
        nbr_message_plan(csr)
    )
    assert np.array_equal(offsets, csr.nbr_offsets)
    assert np.array_equal(targets, csr.nbr_targets)
    edge_slot = csr.edge_slot
    k = 0
    for i, v in enumerate(csr.vertex_ids):
        for u in csr.nbr_ids[i]:
            slot = edge_slot.get((u, v))
            expect_in = (slot, 0) if slot is not None else (
                edge_slot[(v, u)], 1
            )
            slot = edge_slot.get((v, u))
            expect_out = (slot, 0) if slot is not None else (
                edge_slot[(u, v)], 1
            )
            assert (in_slot[k], in_dir[k]) == expect_in, (v, u)
            assert (out_slot[k], out_dir[k]) == expect_out, (v, u)
            k += 1
    assert k == len(targets)


def test_uncovered_vertex_raises_like_scalar_scheduler():
    """Batch sweeps must fail as loudly as ColorSweepScheduler.add when
    a scheduled vertex is outside the coloring, not report convergence."""
    from repro.errors import SchedulerError

    g = typed_pagerank_graph(n=12, seed=4)
    coloring = greedy_coloring(g)
    partial = {v: c for v, c in coloring.items() if v != 0}
    fn = make_pagerank_update(epsilon=1e-4)
    engine = SequentialEngine(
        g, fn, scheduler=ColorSweepScheduler(partial)
    )
    assert engine._batch_kernel() is not None
    with pytest.raises(SchedulerError):
        engine.run(initial=g.vertices())
