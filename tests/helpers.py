"""Shared graph builders used across the test suite."""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.core.graph import DataGraph


def ring_graph(n: int, vdata: float = 1.0, edata: float = 0.5) -> DataGraph:
    """Directed ring 0 -> 1 -> ... -> n-1 -> 0."""
    g = DataGraph()
    for i in range(n):
        g.add_vertex(i, data=vdata)
    for i in range(n):
        g.add_edge(i, (i + 1) % n, data=edata)
    return g.finalize()


def path_graph(n: int, vdata: float = 0.0) -> DataGraph:
    """Directed path 0 -> 1 -> ... -> n-1."""
    g = DataGraph()
    for i in range(n):
        g.add_vertex(i, data=vdata)
    for i in range(n - 1):
        g.add_edge(i, i + 1, data=None)
    return g.finalize()


def star_graph(n_leaves: int) -> DataGraph:
    """Hub vertex 0 with edges 0 -> 1..n."""
    g = DataGraph()
    g.add_vertex(0, data=0.0)
    for i in range(1, n_leaves + 1):
        g.add_vertex(i, data=float(i))
        g.add_edge(0, i, data=None)
    return g.finalize()


def grid_graph(rows: int, cols: int) -> DataGraph:
    """4-connected grid with (r, c) tuple vertex ids."""
    g = DataGraph()
    for r in range(rows):
        for c in range(cols):
            g.add_vertex((r, c), data=0.0)
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                g.add_edge((r, c), (r + 1, c), data=None)
            if c + 1 < cols:
                g.add_edge((r, c), (r, c + 1), data=None)
    return g.finalize()


def graph_from_edges(
    edges: Iterable[Tuple[int, int]], default: float = 0.0
) -> DataGraph:
    """Graph from an edge list, creating vertices on demand."""
    g = DataGraph()
    seen = set()
    edge_list = list(edges)
    for u, v in edge_list:
        for x in (u, v):
            if x not in seen:
                seen.add(x)
                g.add_vertex(x, data=default)
    for u, v in edge_list:
        g.add_edge(u, v, data=None)
    return g.finalize()
