"""Tests for the comparison systems: Pregel, MapReduce/Hadoop, MPI, DFS,
and the paper-scale analytic cost models."""

import numpy as np
import pytest

from repro.apps import (
    exact_pagerank,
    initialize_factors,
    make_als_update,
    training_rmse,
)
from repro.baselines import (
    MapReduceEngine,
    MapReduceJob,
    PregelEngine,
    coseg_workload,
    graphlab_mbps_per_machine,
    graphlab_runtime,
    hadoop_runtime,
    mpi_runtime,
    ner_workload,
    netflix_workload,
    pregel_pagerank,
    run_hadoop_als,
    run_hadoop_coem,
    run_mpi_als,
    run_mpi_coem,
    speedup_curve,
)
from repro.core import SequentialEngine
from repro.datasets import power_law_web_graph, synthetic_ner, synthetic_netflix
from repro.distributed import DistributedFileSystem
from repro.errors import DFSError, EngineError
from repro.sim import Cluster

from tests.helpers import ring_graph


class TestPregel:
    def test_pagerank_matches_exact(self):
        g = power_law_web_graph(120, seed=1)
        truth = exact_pagerank(g)
        result = pregel_pagerank(g, num_iterations=80)
        assert result.converged
        err = sum(abs(result.values[v] - truth[v]) for v in g.vertices())
        assert err < 1e-3

    def test_halted_vertices_wake_on_message(self):
        g = ring_graph(3)

        def compute(ctx):
            if ctx.superstep == 0 and ctx.vertex == 0:
                ctx.send(1, "ping")
            if ctx.superstep > 0 and ctx.messages:
                ctx.value = ctx.messages[0]
            ctx.vote_to_halt()

        engine = PregelEngine(
            g, compute, initial_values={v: None for v in g.vertices()}
        )
        result = engine.run()
        assert result.converged
        assert result.values[1] == "ping"

    def test_combiner_reduces_messages(self):
        g = ring_graph(4)
        seen = {}

        def compute(ctx):
            if ctx.superstep == 0:
                for t in ctx.out_neighbors:
                    ctx.send(t, 1.0)
                    ctx.send(t, 2.0)
            elif ctx.messages:
                seen[ctx.vertex] = list(ctx.messages)
            ctx.vote_to_halt()

        engine = PregelEngine(
            g,
            compute,
            initial_values={v: 0 for v in g.vertices()},
            combiner=lambda a, b: a + b,
        )
        engine.run()
        assert all(msgs == [3.0] for msgs in seen.values())

    def test_missing_initial_values_rejected(self):
        g = ring_graph(3)
        with pytest.raises(EngineError):
            PregelEngine(g, lambda ctx: None, initial_values={0: 1})

    def test_superstep_limit(self):
        g = ring_graph(2)

        def chatty(ctx):
            ctx.send_to_all_neighbors("x")

        engine = PregelEngine(
            g, chatty, initial_values={v: 0 for v in g.vertices()},
            max_supersteps=5,
        )
        result = engine.run()
        assert not result.converged
        assert result.supersteps == 5


class TestDFS:
    def test_write_read_round_trip(self):
        cluster = Cluster(3)
        dfs = DistributedFileSystem(cluster, replication=2)

        def flow():
            yield cluster.kernel.spawn(
                dfs.write(0, "blob", 1e6, payload={"k": 1})
            )
            value = yield cluster.kernel.spawn(dfs.read(2, "blob"))
            return value

        assert cluster.kernel.run_process(flow()) == {"k": 1}
        assert dfs.stat("blob").size_bytes == 1e6
        assert len(dfs.stat("blob").replicas) == 2
        assert cluster.kernel.now > 0

    def test_replication_capped_by_cluster(self):
        cluster = Cluster(2)
        dfs = DistributedFileSystem(cluster, replication=5)
        assert dfs.replication == 2

    def test_missing_file(self):
        cluster = Cluster(1)
        dfs = DistributedFileSystem(cluster)
        with pytest.raises(DFSError):
            dfs.stat("nope")

    def test_local_read_cheaper_than_remote(self):
        cluster = Cluster(2)
        dfs = DistributedFileSystem(cluster, replication=1)

        def write(machine):
            yield cluster.kernel.spawn(dfs.write(0, "f", 1e7))

        cluster.kernel.run_process(write(0))

        def read(machine):
            start = cluster.kernel.now
            yield cluster.kernel.spawn(dfs.read(machine, "f"))
            return cluster.kernel.now - start

        local = cluster.kernel.run_process(read(0))
        remote = cluster.kernel.run_process(read(1))
        assert remote > local


class TestMapReduce:
    def test_wordcount_semantics(self):
        cluster = Cluster(3)
        dfs = DistributedFileSystem(cluster, replication=1)
        engine = MapReduceEngine(cluster, dfs)
        job = MapReduceJob(
            name="wordcount",
            map_fn=lambda k, text: [(w, 1) for w in text.split()],
            reduce_fn=lambda word, ones: [(word, sum(ones))],
            record_size=lambda k, v: 64.0,
            pair_size=lambda k, v: 16.0,
        )
        records = [(0, "a b a"), (1, "b c"), (2, "a")]
        output, stats = engine.run_job(job, records)
        assert dict(output) == {"a": 3, "b": 2, "c": 1}
        assert stats.map_records == 3
        assert stats.shuffle_pairs == 6
        assert stats.runtime > 20.0  # job startup dominates small jobs

    def test_hadoop_als_agrees_with_graphlab_als(self):
        data = synthetic_netflix(num_users=60, num_movies=20, seed=2)
        d, iterations = 3, 3
        # Reference: sequential GraphLab static ALS.
        initialize_factors(data.graph, d, seed=1)
        static = make_als_update(d=d, dynamic=False)
        from repro.apps import static_sweep_schedule

        engine = SequentialEngine(data.graph, static)
        sides = static_sweep_schedule(data.graph, data.side_fn)
        for _ in range(iterations):
            for side in sides:
                engine.run(initial=side)
        reference_rmse = training_rmse(data.graph)

        cluster = Cluster(2)
        dfs = DistributedFileSystem(cluster, replication=1)
        hadoop = run_hadoop_als(
            cluster, dfs, data.graph, data.side_fn, d, iterations, seed=1
        )
        predicted = [
            (np.dot(hadoop.values[u], hadoop.values[m]) - data.graph.edge_data(u, m)) ** 2
            for (u, m) in data.graph.edges()
        ]
        hadoop_rmse = float(np.sqrt(np.mean(predicted)))
        assert abs(hadoop_rmse - reference_rmse) < 0.1
        assert hadoop.jobs == 2 * iterations
        assert hadoop.runtime > 40.0  # startup-dominated

    def test_hadoop_coem_propagates_types(self):
        data = synthetic_ner(phrases_per_type=10, num_contexts=30, seed=3)
        cluster = Cluster(2)
        dfs = DistributedFileSystem(cluster, replication=1)
        result = run_hadoop_coem(
            cluster, dfs, data.graph, data.side_fn, data.seeds,
            num_types=len(data.types), iterations=4,
        )
        labels = {
            v: int(np.argmax(dist))
            for v, dist in result.values.items()
            if v[0] == "np"
        }
        correct = sum(
            1 for v, t in data.truth.items() if labels.get(v) == t
        )
        assert correct / len(data.truth) > 0.8


class TestMPI:
    def test_mpi_als_converges(self):
        data = synthetic_netflix(num_users=60, num_movies=20, seed=4)
        cluster = Cluster(4)
        result = run_mpi_als(
            cluster, data.graph, data.side_fn, d=3, iterations=4, seed=1
        )
        sq = [
            (np.dot(result.values[u], result.values[m]) - data.graph.edge_data(u, m)) ** 2
            for (u, m) in data.graph.edges()
        ]
        assert float(np.sqrt(np.mean(sq))) < 0.3
        assert result.supersteps == 8
        assert result.runtime > 0
        assert sum(result.bytes_sent_per_machine.values()) > 0

    def test_mpi_coem_respects_seeds(self):
        data = synthetic_ner(phrases_per_type=8, num_contexts=24, seed=5)
        cluster = Cluster(2)
        result = run_mpi_coem(
            cluster, data.graph, data.side_fn, data.seeds,
            num_types=len(data.types), iterations=3,
        )
        for seed_vertex, seed_type in data.seeds.items():
            assert result.values[seed_vertex][seed_type] == 1.0


class TestAnalyticModels:
    def test_more_machines_faster_everywhere(self):
        for wl in (netflix_workload(20), coseg_workload()):
            times = [graphlab_runtime(m, wl) for m in (4, 8, 16, 32, 64)]
            assert times == sorted(times, reverse=True)

    def test_ner_scaling_plateaus(self):
        wl = ner_workload()
        curve = speedup_curve(
            lambda m: graphlab_runtime(m, wl), [4, 16, 64]
        )
        assert curve[64] < 4.5
        assert curve[16] > 2.5

    def test_hadoop_ratio_bands(self):
        wl = netflix_workload(20)
        for m in (4, 16, 64):
            ratio = hadoop_runtime(m, wl) / graphlab_runtime(m, wl)
            assert 20.0 <= ratio <= 90.0

    def test_mpi_comparable_on_netflix(self):
        wl = netflix_workload(20)
        for m in (4, 16, 64):
            ratio = graphlab_runtime(m, wl) / mpi_runtime(m, wl)
            assert 0.6 <= ratio <= 1.6

    def test_mpi_wins_on_ner(self):
        wl = ner_workload()
        for m in (16, 64):
            assert graphlab_runtime(m, wl) / mpi_runtime(m, wl) > 1.2

    def test_ner_saturates_effective_bandwidth(self):
        wl = ner_workload()
        assert graphlab_mbps_per_machine(64, wl) > 95.0
        assert graphlab_mbps_per_machine(64, netflix_workload(20)) < 80.0

    def test_netflix_d_monotone(self):
        finals = [
            speedup_curve(
                lambda m, d=d: graphlab_runtime(m, netflix_workload(d)),
                [4, 64],
            )[64]
            for d in (5, 20, 50, 100)
        ]
        assert finals == sorted(finals)
