"""Tests for graph coloring (chromatic engine prerequisites, Sec. 4.2.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Consistency,
    bipartite_coloring,
    color_classes,
    coloring_for,
    constant_coloring,
    greedy_coloring,
    num_colors,
    second_order_coloring,
    validate_coloring,
)
from repro.core.graph import DataGraph
from repro.errors import ColoringError

from tests.helpers import graph_from_edges, grid_graph, ring_graph, star_graph


class TestGreedy:
    def test_proper_on_ring(self):
        g = ring_graph(6)
        colors = greedy_coloring(g)
        validate_coloring(g, colors, Consistency.EDGE)
        assert num_colors(colors) <= 3

    def test_odd_ring_needs_three(self):
        g = ring_graph(5)
        colors = greedy_coloring(g)
        validate_coloring(g, colors, Consistency.EDGE)
        assert num_colors(colors) == 3

    def test_star_two_colors(self):
        g = star_graph(10)
        colors = greedy_coloring(g)
        validate_coloring(g, colors, Consistency.EDGE)
        assert num_colors(colors) == 2

    def test_natural_order(self):
        g = grid_graph(3, 3)
        colors = greedy_coloring(g, order="natural")
        validate_coloring(g, colors, Consistency.EDGE)

    def test_unknown_order(self):
        with pytest.raises(ColoringError):
            greedy_coloring(ring_graph(3), order="bogus")

    def test_empty_graph(self):
        g = DataGraph().finalize()
        assert greedy_coloring(g) == {}
        assert num_colors({}) == 0

    @given(st.integers(min_value=2, max_value=9), st.data())
    @settings(max_examples=40, deadline=None)
    def test_random_graphs_get_proper_colorings(self, n, data):
        pairs = data.draw(
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=30,
            )
        )
        edges = {(u, v) for u, v in pairs if u < v}
        g = DataGraph(vertices=range(n), edges=sorted(edges)).finalize()
        colors = greedy_coloring(g)
        validate_coloring(g, colors, Consistency.EDGE)
        max_degree = max((g.degree(v) for v in g.vertices()), default=0)
        assert num_colors(colors) <= max_degree + 1  # greedy bound


class TestSecondOrder:
    def test_distance_two_valid(self):
        g = grid_graph(4, 4)
        colors = second_order_coloring(g)
        validate_coloring(g, colors, Consistency.FULL)

    def test_first_order_coloring_fails_full_validation(self):
        g = grid_graph(3, 3)
        first_order = greedy_coloring(g)
        with pytest.raises(ColoringError):
            validate_coloring(g, first_order, Consistency.FULL)


class TestBipartite:
    def test_even_ring_is_bipartite(self):
        g = ring_graph(8)
        colors = bipartite_coloring(g)
        validate_coloring(g, colors, Consistency.EDGE)
        assert num_colors(colors) == 2

    def test_odd_ring_raises(self):
        with pytest.raises(ColoringError):
            bipartite_coloring(ring_graph(5))

    def test_side_fn(self):
        g = graph_from_edges([(0, 10), (1, 10), (0, 11)])
        colors = bipartite_coloring(g, side_fn=lambda v: 0 if v < 10 else 1)
        validate_coloring(g, colors, Consistency.EDGE)

    def test_bad_side_fn_value(self):
        g = graph_from_edges([(0, 1)])
        with pytest.raises(ColoringError):
            bipartite_coloring(g, side_fn=lambda v: 7)

    def test_wrong_side_fn_detected(self):
        g = graph_from_edges([(0, 1)])
        with pytest.raises(ColoringError):
            bipartite_coloring(g, side_fn=lambda v: 0)

    def test_disconnected_components(self):
        g = graph_from_edges([(0, 1), (2, 3)])
        colors = bipartite_coloring(g)
        validate_coloring(g, colors, Consistency.EDGE)


class TestHelpers:
    def test_constant_coloring_valid_for_vertex_model(self):
        g = ring_graph(4)
        colors = constant_coloring(g)
        validate_coloring(g, colors, Consistency.VERTEX)
        with pytest.raises(ColoringError):
            validate_coloring(g, colors, Consistency.EDGE)

    def test_coloring_for_dispatch(self):
        g = ring_graph(6)
        assert num_colors(coloring_for(g, Consistency.VERTEX)) == 1
        validate_coloring(g, coloring_for(g, Consistency.EDGE), Consistency.EDGE)
        validate_coloring(g, coloring_for(g, Consistency.FULL), Consistency.FULL)

    def test_coloring_for_validates_user_coloring(self):
        g = ring_graph(4)
        good = {0: 0, 1: 1, 2: 0, 3: 1}
        assert coloring_for(g, Consistency.EDGE, coloring=good) == good
        bad = {0: 0, 1: 0, 2: 0, 3: 0}
        with pytest.raises(ColoringError):
            coloring_for(g, Consistency.EDGE, coloring=bad)

    def test_missing_vertices_detected(self):
        g = ring_graph(4)
        with pytest.raises(ColoringError):
            validate_coloring(g, {0: 0}, Consistency.VERTEX)

    def test_color_classes_partition_vertices(self):
        g = grid_graph(3, 4)
        colors = greedy_coloring(g)
        classes = color_classes(colors)
        flattened = [v for cls in classes for v in cls]
        assert sorted(map(str, flattened)) == sorted(map(str, g.vertices()))
        # classes ordered by color id and no class empty
        assert all(cls for cls in classes)

    def test_color_classes_empty(self):
        assert color_classes({}) == []
