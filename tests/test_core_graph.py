"""Unit tests for repro.core.graph (the data graph, Sec. 3.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import DataGraph
from repro.errors import GraphNotFinalizedError, GraphStructureError

from tests.helpers import ring_graph


class TestConstruction:
    def test_add_vertex_and_data(self):
        g = DataGraph()
        g.add_vertex("a", data=3)
        assert g.has_vertex("a")
        assert g.vertex_data("a") == 3
        assert g.num_vertices == 1

    def test_add_edge_and_data(self):
        g = DataGraph()
        g.add_vertex(0)
        g.add_vertex(1)
        g.add_edge(0, 1, data="w")
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert g.edge_data(0, 1) == "w"

    def test_constructor_bulk(self):
        g = DataGraph(vertices=[(0, "x"), (1, "y"), 2], edges=[(0, 1, 5), (1, 2)])
        assert g.vertex_data(0) == "x"
        assert g.vertex_data(2) is None
        assert g.edge_data(0, 1) == 5
        assert g.edge_data(1, 2) is None

    def test_duplicate_vertex_rejected(self):
        g = DataGraph()
        g.add_vertex(0)
        with pytest.raises(GraphStructureError):
            g.add_vertex(0)

    def test_duplicate_edge_rejected(self):
        g = DataGraph(vertices=[0, 1], edges=[(0, 1)])
        with pytest.raises(GraphStructureError):
            g.add_edge(0, 1)

    def test_self_loop_rejected(self):
        g = DataGraph(vertices=[0])
        with pytest.raises(GraphStructureError):
            g.add_edge(0, 0)

    def test_edge_to_missing_vertex_rejected(self):
        g = DataGraph(vertices=[0])
        with pytest.raises(GraphStructureError):
            g.add_edge(0, 1)
        with pytest.raises(GraphStructureError):
            g.add_edge(9, 0)

    def test_reverse_edge_is_distinct(self):
        g = DataGraph(vertices=[0, 1], edges=[(0, 1, "fwd"), (1, 0, "bwd")])
        assert g.edge_data(0, 1) == "fwd"
        assert g.edge_data(1, 0) == "bwd"
        assert g.num_edges == 2


class TestFinalization:
    def test_structure_frozen_after_finalize(self):
        g = DataGraph(vertices=[0, 1], edges=[(0, 1)])
        g.finalize()
        with pytest.raises(GraphStructureError):
            g.add_vertex(2)
        with pytest.raises(GraphStructureError):
            g.add_edge(1, 0)

    def test_finalize_idempotent(self):
        g = DataGraph(vertices=[0])
        assert g.finalize() is g
        assert g.finalize() is g

    def test_data_mutable_after_finalize(self):
        g = ring_graph(3)
        g.set_vertex_data(0, 42.0)
        g.set_edge_data(0, 1, -1.0)
        assert g.vertex_data(0) == 42.0
        assert g.edge_data(0, 1) == -1.0

    def test_require_finalized(self):
        g = DataGraph(vertices=[0])
        with pytest.raises(GraphNotFinalizedError):
            g.require_finalized()
        g.finalize()
        g.require_finalized()


class TestNeighborhoods:
    def test_directed_neighbors(self):
        g = DataGraph(vertices=[0, 1, 2], edges=[(0, 1), (2, 0)]).finalize()
        assert g.out_neighbors(0) == (1,)
        assert g.in_neighbors(0) == (2,)
        assert set(g.neighbors(0)) == {1, 2}

    def test_neighbors_dedupe_bidirectional_edges(self):
        g = DataGraph(vertices=[0, 1], edges=[(0, 1), (1, 0)]).finalize()
        assert g.neighbors(0) == (1,)
        assert g.degree(0) == 1
        assert g.in_degree(0) == 1 and g.out_degree(0) == 1

    def test_adjacent_edges_both_directions(self):
        g = DataGraph(
            vertices=[0, 1, 2], edges=[(0, 1), (1, 2), (2, 1)]
        ).finalize()
        assert set(g.adjacent_edges(1)) == {(0, 1), (1, 2), (2, 1)}

    def test_neighbors_before_finalize(self):
        g = DataGraph(vertices=[0, 1], edges=[(0, 1)])
        assert g.neighbors(0) == (1,)

    def test_unknown_vertex_data_raises(self):
        g = ring_graph(3)
        with pytest.raises(GraphStructureError):
            g.vertex_data(99)
        with pytest.raises(GraphStructureError):
            g.set_vertex_data(99, 0)
        with pytest.raises(GraphStructureError):
            g.edge_data(0, 2)


class TestCopy:
    def test_copy_is_independent(self):
        g = ring_graph(4)
        h = g.copy()
        h.set_vertex_data(0, 99.0)
        assert g.vertex_data(0) == 1.0
        assert h.vertex_data(0) == 99.0
        assert h.finalized

    def test_copy_preserves_structure(self):
        g = ring_graph(5)
        h = g.copy()
        assert h.num_vertices == 5
        assert h.num_edges == 5
        assert h.neighbors(0) == g.neighbors(0)


@st.composite
def random_edge_lists(draw):
    n = draw(st.integers(min_value=2, max_value=20))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=60,
        )
    )
    edges = []
    seen = set()
    for u, v in pairs:
        if u != v and (u, v) not in seen:
            seen.add((u, v))
            edges.append((u, v))
    return n, edges


class TestProperties:
    @given(random_edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_degree_sums_match_edge_count(self, case):
        n, edges = case
        g = DataGraph(vertices=range(n), edges=edges).finalize()
        assert sum(g.out_degree(v) for v in g.vertices()) == len(edges)
        assert sum(g.in_degree(v) for v in g.vertices()) == len(edges)

    @given(random_edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_neighbor_symmetry(self, case):
        n, edges = case
        g = DataGraph(vertices=range(n), edges=edges).finalize()
        for v in g.vertices():
            for u in g.neighbors(v):
                assert v in g.neighbors(u)

    @given(random_edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_adjacent_edges_consistent_with_neighbors(self, case):
        n, edges = case
        g = DataGraph(vertices=range(n), edges=edges).finalize()
        for v in g.vertices():
            endpoints = set()
            for (a, b) in g.adjacent_edges(v):
                assert v in (a, b)
                endpoints.add(b if a == v else a)
            assert endpoints == set(g.neighbors(v))
