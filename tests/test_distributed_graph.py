"""Tests for atoms, partitioning, ingress, and the ghosted graph store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consistency import edge_key, vertex_key
from repro.distributed import (
    Atom,
    DataSizeModel,
    build_atoms,
    build_stores,
    balance,
    bfs_assignment,
    cut_edges,
    deploy,
    frame_assignment,
    grid_assignment,
    random_hash_assignment,
    stripe_assignment,
)
from repro.distributed.atom import ADD_EDGE, ADD_VERTEX
from repro.errors import AtomFormatError, GraphStructureError, PartitionError

from tests.helpers import grid_graph, ring_graph


class TestPartitioners:
    def test_hash_assignment_covers_all(self):
        g = ring_graph(20)
        a = random_hash_assignment(g, 4)
        assert set(a) == set(g.vertices())
        assert all(0 <= x < 4 for x in a.values())

    def test_hash_deterministic(self):
        g = ring_graph(20)
        assert random_hash_assignment(g, 4) == random_hash_assignment(g, 4)

    def test_bfs_balanced_and_low_cut(self):
        g = grid_graph(8, 8)
        bfs = bfs_assignment(g, 4)
        hashed = random_hash_assignment(g, 4)
        assert balance(bfs, 4) <= 1.2
        assert cut_edges(g, bfs) < cut_edges(g, hashed)

    def test_grid_assignment_contiguous(self):
        g = grid_graph(8, 4)
        a = grid_assignment(g, 4)
        assert balance(a, 4) <= 1.2
        # Row-major slabs: few cut edges.
        assert cut_edges(g, a) <= 3 * 4 + 4

    def test_stripe_is_worst_case(self):
        g = grid_graph(6, 6)
        stripe = stripe_assignment(g, 4)
        good = grid_assignment(g, 4)
        assert cut_edges(g, stripe) > 2 * cut_edges(g, good)

    def test_frame_assignment_blocks(self):
        g = grid_graph(8, 3)  # rows act as frames
        a = frame_assignment(g, 4, frame_fn=lambda v: v[0], num_frames=8)
        assert balance(a, 4) <= 1.2
        # vertices of the same frame stay together
        for v in g.vertices():
            for u in g.vertices():
                if v[0] == u[0]:
                    assert a[v] == a[u]

    def test_frame_assignment_validates(self):
        g = grid_graph(2, 2)
        with pytest.raises(PartitionError):
            frame_assignment(g, 2, frame_fn=lambda v: 99, num_frames=2)

    def test_k_validation(self):
        g = ring_graph(4)
        with pytest.raises(PartitionError):
            random_hash_assignment(g, 0)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_every_partitioner_is_total(self, k):
        g = grid_graph(5, 5)
        for fn in (random_hash_assignment, bfs_assignment, grid_assignment):
            a = fn(g, k)
            assert set(a) == set(g.vertices())
            assert all(0 <= x < k for x in a.values())


class TestAtoms:
    def test_build_atoms_round_trip(self):
        g = ring_graph(12, vdata=2.0, edata=0.25)
        assignment = bfs_assignment(g, 3)
        atoms, index = build_atoms(g, assignment, 3)
        assert len(atoms) == 3
        total_owned = sum(len(a.owned_vertices) for a in atoms)
        assert total_owned == g.num_vertices
        total_edges = sum(
            1 for a in atoms for c in a.commands if c.op == ADD_EDGE
        )
        assert total_edges == g.num_edges

    def test_ghosts_cover_boundaries(self):
        g = ring_graph(10)
        assignment = {v: v % 2 for v in g.vertices()}
        atoms, _ = build_atoms(g, assignment, 2)
        # Alternating assignment: every vertex is a ghost of the other.
        assert len(atoms[0].ghost_vertices) == 5
        assert len(atoms[1].ghost_vertices) == 5

    def test_atom_encode_decode(self):
        g = ring_graph(6, vdata=1.5)
        atoms, _ = build_atoms(g, bfs_assignment(g, 2), 2)
        blob = atoms[0].encode()
        decoded = Atom.decode(blob)
        assert decoded.atom_id == atoms[0].atom_id
        assert decoded.owned_vertices == atoms[0].owned_vertices
        assert len(decoded.commands) == len(atoms[0].commands)
        assert decoded.commands[0].op == ADD_VERTEX

    def test_decode_rejects_garbage(self):
        with pytest.raises(AtomFormatError):
            Atom.decode(b"not an atom")

    def test_incomplete_assignment_rejected(self):
        g = ring_graph(4)
        with pytest.raises(PartitionError):
            build_atoms(g, {0: 0}, 2)

    def test_out_of_range_atom_rejected(self):
        g = ring_graph(3)
        with pytest.raises(PartitionError):
            build_atoms(g, {0: 0, 1: 5, 2: 0}, 2)

    def test_index_connectivity_counts_cut_edges(self):
        g = ring_graph(8)
        assignment = {v: v // 4 for v in g.vertices()}
        _, index = build_atoms(g, assignment, 2)
        assert index.connectivity.get((0, 1)) == 2  # the two seam edges

    def test_placement_balances(self):
        g = grid_graph(8, 8)
        atoms, index = build_atoms(g, bfs_assignment(g, 8), 8)
        placement = index.place(4)
        loads = [0] * 4
        for atom_id, machine in placement.items():
            loads[machine] += index.vertex_counts[atom_id]
        assert max(loads) <= 1.5 * (sum(loads) / 4)

    def test_placement_reusable_across_cluster_sizes(self):
        """Two-phase partitioning: one atom cut, any machine count."""
        g = grid_graph(6, 6)
        atoms, index = build_atoms(g, bfs_assignment(g, 8), 8)
        for machines in (1, 2, 4, 8):
            placement = index.place(machines)
            assert set(placement) == set(range(8))
            assert all(0 <= m < machines for m in placement.values())


class TestLocalGraphStore:
    def _stores(self):
        g = ring_graph(8, vdata=1.0, edata=0.5)
        owner = {v: v % 2 for v in g.vertices()}
        return g, build_stores(g, owner, 2)

    def test_owned_and_ghosts(self):
        g, stores = self._stores()
        assert sorted(stores[0].owned_vertices) == [0, 2, 4, 6]
        # Alternating ring: all opposite vertices are ghosts.
        assert stores[0].ghost_vertices == frozenset({1, 3, 5, 7})

    def test_reads_cover_scope(self):
        g, stores = self._stores()
        assert stores[0].vertex_data(0) == 1.0
        assert stores[0].vertex_data(1) == 1.0  # ghost copy
        assert stores[0].edge_data(0, 1) == 0.5

    def test_write_bumps_version_and_dirty(self):
        g, stores = self._stores()
        key = vertex_key(0)
        assert stores[0].version(key) == 0
        stores[0].set_vertex_data(0, 9.0)
        assert stores[0].version(key) == 1
        assert stores[0].dirty_count == 1

    def test_unknown_vertex_rejected(self):
        g = ring_graph(6)
        owner = {v: 0 if v < 3 else 1 for v in g.vertices()}
        stores = build_stores(g, owner, 2)
        # vertex 5 is neither owned by machine 0 nor its ghost? ring:
        # 0-1-2 owned, ghosts 3 (nbr of 2) and 5 (nbr of 0) -> 4 missing
        with pytest.raises(GraphStructureError):
            stores[0].vertex_data(4)

    def test_ghost_staleness_until_applied(self):
        g, stores = self._stores()
        stores[1].set_vertex_data(1, 7.0)  # owner writes
        assert stores[0].vertex_data(1) == 1.0  # ghost is stale
        pushes = stores[1].collect_dirty()
        for (key, value, version, _size) in pushes[0]:
            stores[0].apply_remote(key, value, version)
        assert stores[0].vertex_data(1) == 7.0

    def test_apply_remote_drops_stale_versions(self):
        g, stores = self._stores()
        key = vertex_key(1)
        assert stores[0].apply_remote(key, 5.0, 3)
        assert not stores[0].apply_remote(key, 4.0, 2)  # stale
        assert not stores[0].apply_remote(key, 4.0, 3)  # duplicate
        assert stores[0].vertex_data(1) == 5.0

    def test_collect_dirty_targets_mirrors_only(self):
        g = ring_graph(8)
        owner = {v: v // 4 for v in g.vertices()}  # halves
        stores = build_stores(g, owner, 2)
        stores[0].set_vertex_data(1, 3.0)  # interior: no mirrors
        assert stores[0].collect_dirty() == {}
        stores[0].set_vertex_data(0, 3.0)  # boundary: mirrored on 1
        pushes = stores[0].collect_dirty()
        assert set(pushes) == {1}

    def test_collect_dirty_clears(self):
        g, stores = self._stores()
        stores[0].set_vertex_data(0, 2.0)
        stores[0].collect_dirty()
        assert stores[0].dirty_count == 0
        assert stores[0].collect_dirty() == {}

    def test_edge_dirty_goes_to_other_endpoint_owner(self):
        g, stores = self._stores()
        stores[0].set_edge_data(0, 1, 0.9)
        pushes = stores[0].collect_dirty()
        assert set(pushes) == {1}
        (key, value, _v, _s) = pushes[1][0]
        assert key == edge_key(0, 1)
        assert value == 0.9

    def test_checkpoint_round_trip(self):
        g, stores = self._stores()
        stores[0].set_vertex_data(0, 42.0)
        payload = stores[0].checkpoint_payload()
        stores[0].set_vertex_data(0, -1.0)
        stores[0].restore_checkpoint(payload)
        assert stores[0].vertex_data(0) == 42.0


class TestDeploy:
    def test_deploy_builds_consistent_ownership(self):
        g = grid_graph(6, 6)
        dep = deploy(g, 3, partitioner="bfs", atoms_per_machine=2)
        assert set(dep.owner) == set(g.vertices())
        for m, store in dep.stores.items():
            for v in store.owned_vertices:
                assert dep.owner[v] == m

    def test_deploy_charges_ingress_time(self):
        g = grid_graph(6, 6)
        dep = deploy(g, 2, partitioner="grid")
        assert dep.ingress.load_seconds > 0
        assert dep.dfs.exists("atom/0")

    def test_skip_ingress_io_is_free(self):
        g = grid_graph(4, 4)
        dep = deploy(g, 2, partitioner="grid", skip_ingress_io=True)
        assert dep.ingress.load_seconds == 0.0
        assert dep.cluster.kernel.now == 0.0

    def test_unknown_partitioner(self):
        g = ring_graph(4)
        with pytest.raises(PartitionError):
            deploy(g, 2, partitioner="magic")

    def test_explicit_assignment_respected(self):
        g = ring_graph(8)
        assignment = {v: v % 4 for v in g.vertices()}
        dep = deploy(g, 2, assignment=assignment, atoms_per_machine=2)
        assert len(dep.atoms) == 4
