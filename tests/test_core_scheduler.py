"""Unit + property tests for the schedulers (Sec. 3.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import (
    FIFOScheduler,
    PriorityScheduler,
    SweepScheduler,
    make_scheduler,
)
from repro.errors import SchedulerError


class TestFIFO:
    def test_fifo_order(self):
        s = FIFOScheduler()
        s.add(3)
        s.add(1)
        s.add(2)
        assert [s.pop()[0] for _ in range(3)] == [3, 1, 2]

    def test_duplicates_ignored(self):
        s = FIFOScheduler()
        s.add(1)
        s.add(1)
        assert len(s) == 1
        s.pop()
        assert len(s) == 0

    def test_readd_after_pop_allowed(self):
        s = FIFOScheduler()
        s.add(1)
        s.pop()
        s.add(1)
        assert 1 in s

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulerError):
            FIFOScheduler().pop()

    def test_contains_and_bool(self):
        s = FIFOScheduler()
        assert not s
        s.add("x")
        assert s and "x" in s and "y" not in s

    def test_add_all_mixed_forms(self):
        s = FIFOScheduler()
        s.add_all([1, (2, 5.0), 3])
        assert [s.pop()[0] for _ in range(3)] == [1, 2, 3]


class TestPriority:
    def test_max_priority_first(self):
        s = PriorityScheduler()
        s.add("low", 1.0)
        s.add("high", 10.0)
        s.add("mid", 5.0)
        assert s.pop() == ("high", 10.0)
        assert s.pop() == ("mid", 5.0)
        assert s.pop() == ("low", 1.0)

    def test_priority_merge_takes_max(self):
        s = PriorityScheduler()
        s.add("a", 1.0)
        s.add("b", 5.0)
        s.add("a", 10.0)  # boost
        assert s.pop() == ("a", 10.0)
        assert len(s) == 1

    def test_lower_readd_is_ignored(self):
        s = PriorityScheduler()
        s.add("a", 10.0)
        s.add("a", 1.0)
        assert s.pop() == ("a", 10.0)
        assert len(s) == 0

    def test_fifo_tiebreak(self):
        s = PriorityScheduler()
        s.add("first", 1.0)
        s.add("second", 1.0)
        assert s.pop()[0] == "first"

    def test_peek_priority(self):
        s = PriorityScheduler()
        s.add("a", 1.0)
        s.add("b", 3.0)
        assert s.peek_priority() == 3.0
        assert s.pop()[0] == "b"

    def test_peek_empty_raises(self):
        with pytest.raises(SchedulerError):
            PriorityScheduler().peek_priority()

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulerError):
            PriorityScheduler().pop()

    @given(st.lists(st.tuples(st.integers(0, 20), st.floats(0, 100)), max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_pops_are_nonincreasing(self, items):
        s = PriorityScheduler()
        for v, p in items:
            s.add(v, p)
        last = float("inf")
        popped = set()
        while s:
            v, p = s.pop()
            assert p <= last
            assert v not in popped
            popped.add(v)
            last = p
        assert popped == {v for v, _p in items}


class TestSweep:
    def test_sweep_visits_in_order(self):
        s = SweepScheduler(order=[0, 1, 2, 3])
        s.add(2)
        s.add(0)
        assert s.pop()[0] == 0
        assert s.pop()[0] == 2

    def test_sweep_wraps_around(self):
        s = SweepScheduler(order=[0, 1, 2])
        s.add(2)
        assert s.pop()[0] == 2  # cursor now past 2
        s.add(0)
        s.add(1)
        assert s.pop()[0] == 0
        assert s.pop()[0] == 1

    def test_unknown_vertex_rejected(self):
        s = SweepScheduler(order=[0, 1])
        with pytest.raises(SchedulerError):
            s.add(7)

    def test_duplicate_order_rejected(self):
        with pytest.raises(SchedulerError):
            SweepScheduler(order=[0, 0, 1])

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulerError):
            SweepScheduler(order=[0]).pop()

    def test_readding_same_vertex_is_single_entry(self):
        s = SweepScheduler(order=[0, 1])
        s.add(1)
        s.add(1)
        assert len(s) == 1


class _CountingOrder(list):
    """List that counts __getitem__ calls (sweep pop cost instrument)."""

    def __init__(self, items):
        super().__init__(items)
        self.getitem_calls = 0

    def __getitem__(self, index):
        self.getitem_calls += 1
        return super().__getitem__(index)


class TestSweepSublinearPop:
    def test_sparse_dirty_set_pops_without_scanning_order(self):
        """Regression: pop must bisect to the next dirty vertex, not scan
        the order. With 5 dirty vertices spread over an order of 100k,
        the old implementation touched O(n) positions per pop."""
        n = 100_000
        s = SweepScheduler(order=range(n))
        s._order = _CountingOrder(range(n))  # instrument lookups
        dirty = [10, 25_000, 50_000, 75_000, 99_999]
        for v in dirty:
            s.add(v)
        popped = [s.pop()[0] for _ in range(len(dirty))]
        assert popped == dirty  # in-order from cursor 0
        # One order lookup per pop (plus nothing else): sub-linear.
        assert s._order.getitem_calls <= 2 * len(dirty)

    def test_wrap_around_with_sparse_dirty_set(self):
        s = SweepScheduler(order=range(1000))
        s.add(990)
        assert s.pop()[0] == 990  # cursor now at 991
        s.add(5)
        s.add(995)
        assert s.pop()[0] == 995
        assert s.pop()[0] == 5  # wrapped

    @given(
        st.lists(
            st.tuples(st.sampled_from(["add", "pop"]), st.integers(0, 30)),
            max_size=200,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_linear_scan_reference(self, ops):
        """The bisecting pop is behaviorally identical to the seed's
        linear scan from the cursor."""
        n = 31
        s = SweepScheduler(order=range(n))
        ref_dirty = set()
        ref_cursor = 0
        for op, v in ops:
            if op == "add":
                s.add(v)
                ref_dirty.add(v)
            elif s:
                got = s.pop()[0]
                expect = next(
                    u
                    for off in range(n)
                    for u in [(ref_cursor + off) % n]
                    if u in ref_dirty
                )
                ref_dirty.discard(expect)
                ref_cursor = (expect + 1) % n
                assert got == expect
        assert set(s._dirty) == ref_dirty


class TestEmptyPeekContract:
    """All three schedulers share the raise-on-empty peek contract."""

    @pytest.mark.parametrize(
        "scheduler",
        [FIFOScheduler(), PriorityScheduler(), SweepScheduler(order=[0, 1])],
        ids=["fifo", "priority", "sweep"],
    )
    def test_empty_peek_raises(self, scheduler):
        with pytest.raises(SchedulerError):
            scheduler.peek_priority()

    def test_nonempty_unprioritized_peek_is_zero(self):
        fifo = FIFOScheduler()
        fifo.add("v")
        assert fifo.peek_priority() == 0.0
        sweep = SweepScheduler(order=[0, 1])
        sweep.add(1)
        assert sweep.peek_priority() == 0.0

    def test_nonempty_priority_peek_matches_pop(self):
        s = PriorityScheduler()
        s.add("a", 2.0)
        assert s.peek_priority() == 2.0
        assert s.pop() == ("a", 2.0)


class TestAddAllTupleVertexIds:
    def test_tuple_vertex_with_non_numeric_second_element(self):
        """A hashable 2-tuple id like ("ctx", "x") must be scheduled
        whole, not unpacked into (id, priority)."""
        s = FIFOScheduler()
        s.add_all([("ctx", "x"), ("ner", "y")])
        assert s.pop()[0] == ("ctx", "x")
        assert s.pop()[0] == ("ner", "y")

    def test_numeric_pair_still_parsed_as_priority(self):
        s = PriorityScheduler()
        s.add_all([("low", 1), ("high", 9.0)])
        assert s.pop() == ("high", 9.0)
        assert s.pop() == ("low", 1.0)

    def test_bool_second_element_is_vertex_id(self):
        """bool is an int subtype but never a priority."""
        s = FIFOScheduler()
        s.add_all([("flag", True)])
        assert s.pop()[0] == ("flag", True)

    def test_three_tuples_and_longer_are_vertex_ids(self):
        s = FIFOScheduler()
        s.add_all([(0, 1, 2)])
        assert s.pop()[0] == (0, 1, 2)

    def test_add_pairs_takes_normalized_pairs_verbatim(self):
        """add_pairs never disambiguates: pairs are (vertex, priority)
        even when the vertex is itself a 2-tuple."""
        s = PriorityScheduler()
        s.add_pairs([(("r", "c"), 5.0), ("x", 1.0)])
        assert s.pop() == (("r", "c"), 5.0)
        assert s.pop() == ("x", 1.0)


class TestFactory:
    def test_make_fifo(self):
        assert isinstance(make_scheduler("fifo"), FIFOScheduler)

    def test_make_priority(self):
        assert isinstance(make_scheduler("priority"), PriorityScheduler)

    def test_make_sweep_needs_order(self):
        with pytest.raises(SchedulerError):
            make_scheduler("sweep")
        assert isinstance(make_scheduler("sweep", order=[1, 2]), SweepScheduler)

    def test_unknown_name(self):
        with pytest.raises(SchedulerError):
            make_scheduler("banana")


@given(
    st.lists(
        st.tuples(st.sampled_from(["add", "pop"]), st.integers(0, 10)),
        max_size=100,
    )
)
@settings(max_examples=60, deadline=None)
def test_fifo_never_holds_duplicates(ops):
    """Invariant: the scheduler is a *set* (Alg. 2 ignores duplicates)."""
    s = FIFOScheduler()
    for op, v in ops:
        if op == "add":
            s.add(v)
        elif s:
            s.pop()
    drained = []
    while s:
        drained.append(s.pop()[0])
    assert len(drained) == len(set(drained))
