"""Smoke tests for every ``examples/*.py`` entry point.

The examples are the repo's front door and previously had zero
coverage — a rename in an app or engine API could rot them silently.
Each test imports the script by file path and runs its ``main()`` at
deliberately tiny sizes (the example defaults stay demo-sized), so
tier-1 catches breakage in seconds. Output is swallowed; the assertion
is simply "the end-to-end path still runs".
"""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

#: script stem -> tiny-size kwargs for its main()
SMOKE_ARGS = {
    "quickstart": {"num_vertices": 60},
    "fault_tolerance_demo": {"side": 3},
    "ner_extraction": {
        "phrases_per_type": 6, "num_contexts": 24, "edges_per_phrase": 4,
    },
    "netflix_recommender": {
        "num_users": 40, "num_movies": 12, "ratings_per_user": 6,
        "iterations": 2,
    },
    "video_segmentation": {"frames": 3, "rows": 4, "cols": 6},
    "multicore_pagerank": {"num_vertices": 80, "max_workers": 2},
    "fault_tolerant_pagerank": {"num_vertices": 80, "num_workers": 2},
    "batch_pagerank": {"num_vertices": 120, "sweeps": 3},
    "profile_pagerank": {"num_vertices": 120, "num_workers": 2},
    "locking_als": {
        "num_users": 16, "num_movies": 8, "ratings_per_user": 4,
        "num_workers": 2,
    },
    "serve_pagerank": {"num_vertices": 48, "num_workers": 2},
}


def load_example(stem: str):
    path = EXAMPLES_DIR / f"{stem}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{stem}", path)
    module = importlib.util.module_from_spec(spec)
    # Registered so dataclasses/pickling inside the example resolve.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_every_example_is_covered():
    """A new example script must get a smoke entry here."""
    stems = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert stems == set(SMOKE_ARGS), (
        "examples/ and SMOKE_ARGS disagree; add tiny-size kwargs for new "
        f"scripts: {sorted(stems ^ set(SMOKE_ARGS))}"
    )


@pytest.mark.parametrize("stem", sorted(SMOKE_ARGS))
def test_example_runs_at_tiny_size(stem):
    module = load_example(stem)
    assert hasattr(module, "main"), f"{stem}.py has no main()"
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main(**SMOKE_ARGS[stem])
    assert buffer.getvalue().strip(), f"{stem}.main() printed nothing"
