"""Runtime observability (ISSUE 7): spans, timelines, reports, export.

Two layers of checks:

* **unit** — the span recorder's bounded buffer and drain-reset cycle,
  counter merging, percentile/histogram math, piggyback stripping for
  both reply shapes, timeline clock-offset application, report
  attribution capping, JSONL round-trips, Chrome-trace validation, and
  the ``python -m repro.obs`` CLI;
* **observe-never-steer** — the load-bearing invariant: a chromatic run
  with telemetry on is *bit-identical* to one with it off (both
  transports, and again under ``REPRO_NO_SHM=1`` via the CI matrix plus
  an explicit monkeypatch case here), and a locking run reaches the
  same fixed point. Byte counters are deliberately NOT compared —
  piggybacked batches legitimately change ``bytes_on_pipe``.

Structural trace checks pin the quantities the paper's figures need:
mp worker tracks must attribute most of their wall time to the six
phases, and the locking grant-latency spans must distinguish a
``window=1`` pipeline (occupancy ≤ 1) from ``window=64`` (> 1).
"""

import json

import pytest

from repro.apps.pagerank import make_pagerank_update
from repro.core import Consistency
from repro.datasets.webgraph import power_law_web_graph
from repro.obs import (
    COORDINATOR_TRACK,
    DEFAULT_CAP,
    PHASES,
    SPAN_KINDS,
    RunTelemetry,
    SpanRecorder,
    Stopwatch,
    TimelineCollector,
    chrome_trace,
    drain_telemetry,
    format_report,
    log2_histogram,
    merge_counters,
    percentile,
    phase_share_fractions,
    read_jsonl,
    summarize,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.__main__ import main as obs_cli
from repro.runtime import (
    RuntimeChromaticEngine,
    RuntimeLockingEngine,
    UpdateProgram,
)


def graph_values(graph):
    vdata = {v: graph.vertex_data(v) for v in graph.vertices()}
    edata = {(a, b): graph.edge_data(a, b) for (a, b) in graph.edges()}
    return vdata, edata


def pagerank_program(epsilon=1e-3):
    return UpdateProgram(make_pagerank_update, kwargs={"epsilon": epsilon})


# ----------------------------------------------------------------------
# Unit: recorder / stopwatch / metrics.
# ----------------------------------------------------------------------
class TestSpanRecorder:
    def test_drain_returns_batch_and_resets(self):
        rec = SpanRecorder()
        rec.span("compute", 1.0, 2.0, 5)
        rec.count("plane_rounds")
        rec.count("plane_rounds", 2)
        batch = rec.drain()
        assert batch == {
            "ev": [("compute", 1.0, 2.0, 5, 0)],
            "ctr": {"plane_rounds": 3},
            "dropped": 0,
        }
        # Drained: the next drain has nothing to say.
        assert rec.drain() is None

    def test_cap_drops_and_counts(self):
        rec = SpanRecorder(cap=2)
        for i in range(5):
            rec.span("compute", float(i), float(i) + 0.5)
        batch = rec.drain()
        assert len(batch["ev"]) == 2
        assert batch["dropped"] == 3
        # The drop counter resets with the buffer.
        rec.span("ser", 0.0, 1.0)
        assert rec.drain()["dropped"] == 0

    def test_default_cap(self):
        assert SpanRecorder().cap == DEFAULT_CAP

    def test_stopwatch_records_on_stop(self):
        rec = SpanRecorder()
        sw = Stopwatch(rec, "snap", a=3)
        seconds = sw.stop()
        assert seconds == sw.seconds >= 0.0
        ((kind, start, end, a, b),) = rec.drain()["ev"]
        assert (kind, a, b) == ("snap", 3, 0)
        assert start == sw.start and end == sw.end

    def test_stopwatch_without_recorder(self):
        sw = Stopwatch(None, "run")
        assert sw.elapsed() >= 0.0
        assert sw.stop() >= 0.0

    def test_stopwatch_context_manager(self):
        rec = SpanRecorder()
        with Stopwatch(rec, "launch") as sw:
            pass
        assert sw.seconds >= 0.0
        assert rec.drain()["ev"][0][0] == "launch"


class TestMetrics:
    def test_merge_counters(self):
        into = {"a": 1}
        merge_counters(into, {"a": 2, "b": 5})
        assert into == {"a": 3, "b": 5}

    def test_percentile_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0) == 10.0
        assert percentile(values, 50) == 30.0
        assert percentile(values, 99) == 40.0
        assert percentile([], 50) == 0.0

    def test_log2_histogram_buckets(self):
        rows = log2_histogram([0.5, 1.0, 3.0, 3.9, 900.0])
        assert rows == [[0.0, 1], [1.0, 1], [2.0, 2], [512.0, 1]]

    def test_log2_histogram_scale(self):
        # Seconds scaled to microseconds land in the right bucket.
        rows = log2_histogram([0.001], scale=1e6)
        assert rows == [[512.0, 1]]


# ----------------------------------------------------------------------
# Unit: piggyback stripping and timeline assembly.
# ----------------------------------------------------------------------
class TestDrainTelemetry:
    def test_tuple_replies_stripped(self):
        collector = TimelineCollector(2)
        batch = {"ev": [("compute", 0.0, 1.0, 0, 0)], "ctr": {}, "dropped": 0}
        replies = [("h", {"x": 1}, batch), ("h", {"x": 2})]
        out = drain_telemetry(replies, collector)
        assert out == [("h", {"x": 1}), ("h", {"x": 2})]
        tel = collector.finalize([0.0, 0.0], {})
        assert list(tel.spans("compute", track=0))

    def test_dict_replies_stripped(self):
        collector = TimelineCollector(1)
        batch = {"ev": [], "ctr": {"plane_rounds": 4}, "dropped": 0}
        replies = [{"executed": 7, "tel": batch}]
        out = drain_telemetry(replies, collector)
        assert out == [{"executed": 7}]
        tel = collector.finalize([0.0], {})
        assert tel.counters[0] == {"plane_rounds": 4}

    def test_no_collector_is_passthrough(self):
        replies = [("h", {"x": 1})]
        assert drain_telemetry(replies, None) is replies

    def test_clock_offsets_applied_and_sorted(self):
        collector = TimelineCollector(2)
        collector.add_worker(
            0, {"ev": [("compute", 10.0, 11.0, 0, 0)], "ctr": {}, "dropped": 0}
        )
        collector.add_worker(
            1, {"ev": [("compute", 3.0, 4.0, 0, 0)], "ctr": {}, "dropped": 0}
        )
        # Worker 1's clock is 9 behind the coordinator's.
        tel = collector.finalize([0.0, 9.0], {"engine": "x"})
        spans = list(tel.spans("compute"))
        assert [s[0] for s in spans] == [0, 1]  # sorted by start
        assert spans[0][2:4] == (10.0, 11.0)
        assert spans[1][2:4] == (12.0, 13.0)
        assert tel.meta["engine"] == "x"
        assert tel.num_workers == 2

    def test_coordinator_track(self):
        collector = TimelineCollector(1)
        collector.coordinator.span("round", 0.0, 1.0, 3)
        tel = collector.finalize([0.0], {})
        ((track, kind, _s, _e, a, _b),) = tel.spans("round")
        assert track == COORDINATOR_TRACK and kind == "round" and a == 3


# ----------------------------------------------------------------------
# Unit: report math on a hand-built timeline.
# ----------------------------------------------------------------------
def _hand_telemetry():
    collector = TimelineCollector(2)
    collector.add_worker(0, {
        "ev": [
            ("compute", 0.0, 4.0, 10, 0),
            ("ser", 4.0, 5.0, 0, 0),
            ("idle", 5.0, 10.0, 0, 0),
            ("lockwait", 0.5, 2.5, 2, 3),
        ],
        "ctr": {"plane_rounds": 1},
        "dropped": 0,
    })
    collector.add_worker(1, {
        "ev": [
            ("kernel", 0.0, 2.0, 8, 0),
            ("ghost", 2.0, 3.0, 0, 0),
            ("idle", 3.0, 10.0, 0, 0),
        ],
        "ctr": {},
        "dropped": 2,
    })
    collector.coordinator.span("launch", -1.0, 0.0)
    collector.coordinator.span("round", 0.0, 10.0, 1)
    collector.coordinator.span("run", -1.0, 10.5)
    return collector.finalize([0.0, 0.0], {"engine": "locking"})


class TestReport:
    def test_phase_attribution(self):
        rep = summarize(_hand_telemetry())
        # Worker 0 wall 0..10, worker 1 wall 0..10; all six-phase
        # seconds fit, so attribution is exact (lockwait excluded).
        assert rep["attribution"] == 1.0
        assert rep["phases"]["compute"]["seconds"] == 6.0  # kernel folds in
        assert rep["phases"]["idle"]["seconds"] == 12.0
        assert rep["phases"]["ghost"]["seconds"] == 1.0
        assert rep["phases"]["ser"]["seconds"] == 1.0
        shares = phase_share_fractions(_hand_telemetry())
        assert set(shares) == set(PHASES)
        assert shares["compute"] == 0.3
        assert rep["dropped"] == 2

    def test_grant_latency_section(self):
        rep = summarize(_hand_telemetry())
        grant = rep["grant_latency"]
        assert grant["count"] == 1
        assert grant["p50_us"] == pytest.approx(2e6)
        assert grant["occupancy_max"] == 2
        assert grant["hops_max"] == 3

    def test_coordinator_section_and_format(self):
        rep = summarize(_hand_telemetry())
        assert rep["coordinator"]["rounds"] == 1
        assert rep["coordinator"]["launch_seconds"] == 1.0
        text = format_report(rep)
        assert "phase breakdown" in text and "compute" in text

    def test_attribution_capped_by_wall(self):
        # Overlapping spans exceeding wall must not push attribution
        # past 1.0 — per-worker seconds are capped at that worker's
        # wall and phase seconds rescale with the cap.
        collector = TimelineCollector(1)
        collector.add_worker(0, {
            "ev": [
                ("compute", 0.0, 10.0, 0, 0),
                ("ghost", 0.0, 10.0, 0, 0),
            ],
            "ctr": {},
            "dropped": 0,
        })
        rep = summarize(collector.finalize([0.0], {}))
        assert rep["attribution"] == 1.0
        total = sum(p["seconds"] for p in rep["phases"].values())
        assert total == pytest.approx(10.0)


# ----------------------------------------------------------------------
# Unit: export and CLI.
# ----------------------------------------------------------------------
class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        tel = _hand_telemetry()
        path = tmp_path / "run.trace.jsonl"
        write_jsonl(tel, path)
        back = read_jsonl(path)
        assert isinstance(back, RunTelemetry)
        assert back.events == tel.events
        assert back.counters == tel.counters
        assert back.dropped == tel.dropped
        assert back.meta == tel.meta

    def test_chrome_trace_validates(self):
        obj = chrome_trace(_hand_telemetry())
        assert validate_chrome_trace(obj) == []
        names = {e["name"] for e in obj["traceEvents"] if e["ph"] == "X"}
        assert names <= SPAN_KINDS
        # Coordinator is tid 0; workers are 1-based.
        tids = {e["tid"] for e in obj["traceEvents"]}
        assert {0, 1, 2} <= tids
        # All timestamps normalized to a non-negative microsecond axis.
        assert all(
            e["ts"] >= 0 for e in obj["traceEvents"] if e["ph"] == "X"
        )

    def test_validate_rejects_garbage(self):
        assert validate_chrome_trace({"traceEvents": "nope"})
        assert validate_chrome_trace({"traceEvents": [{"ph": "Q"}]})
        assert validate_chrome_trace([1, 2, 3])

    def test_cli_report_chrome_validate(self, tmp_path, capsys):
        tel = _hand_telemetry()
        trace = tmp_path / "run.trace.jsonl"
        write_jsonl(tel, trace)
        assert obs_cli(["report", str(trace)]) == 0
        assert "phase breakdown" in capsys.readouterr().out
        assert obs_cli(["report", "--json", str(trace)]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert set(parsed["phases"]) == set(PHASES)
        chrome = tmp_path / "run.chrome.json"
        assert obs_cli(["chrome", str(trace), str(chrome)]) == 0
        capsys.readouterr()
        assert obs_cli(["validate", str(chrome)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "Q"}]}))
        assert obs_cli(["validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Observe, never steer: identical results with telemetry on vs off.
# ----------------------------------------------------------------------
def _chromatic_run(graph, telemetry, transport):
    engine = RuntimeChromaticEngine(
        graph,
        pagerank_program(),
        num_workers=2,
        transport=transport,
        telemetry=telemetry,
    )
    return engine.run(initial=graph.vertices())


def _locking_run(graph, telemetry, transport, window=64):
    engine = RuntimeLockingEngine(
        graph,
        pagerank_program(),
        num_workers=2,
        transport=transport,
        consistency=Consistency.EDGE,
        pipeline_window=window,
        telemetry=telemetry,
    )
    return engine.run(initial=graph.vertices())


class TestObserveNeverSteer:
    @pytest.mark.parametrize("transport", ["inproc", "mp"])
    @pytest.mark.parametrize("typed", [False, True])
    def test_chromatic_bit_identical(self, transport, typed):
        g_on = power_law_web_graph(150, seed=7, typed=typed)
        g_off = power_law_web_graph(150, seed=7, typed=typed)
        r_on = _chromatic_run(g_on, True, transport)
        r_off = _chromatic_run(g_off, False, transport)
        assert graph_values(g_on) == graph_values(g_off)
        assert r_on.num_updates == r_off.num_updates
        assert r_on.converged == r_off.converged
        assert r_on.telemetry is not None
        assert r_off.telemetry is None

    def test_chromatic_bit_identical_no_shm(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        g_on = power_law_web_graph(150, seed=7, typed=True)
        g_off = power_law_web_graph(150, seed=7, typed=True)
        r_on = _chromatic_run(g_on, True, "inproc")
        _chromatic_run(g_off, False, "inproc")
        assert graph_values(g_on) == graph_values(g_off)
        assert r_on.telemetry.meta["data_plane"] != "shm"

    @pytest.mark.parametrize("transport", ["inproc", "mp"])
    def test_locking_same_fixed_point(self, transport):
        g_on = power_law_web_graph(120, seed=11)
        g_off = power_law_web_graph(120, seed=11)
        r_on = _locking_run(g_on, True, transport)
        r_off = _locking_run(g_off, False, transport)
        # Pipelined locking is nondeterministic in schedule but both
        # runs must converge to the same PageRank fixed point.
        on_values, _ = graph_values(g_on)
        off_values, _ = graph_values(g_off)
        assert on_values.keys() == off_values.keys()
        for v in on_values:
            assert on_values[v] == pytest.approx(off_values[v], abs=1e-2)
        assert r_on.converged and r_off.converged
        assert r_on.telemetry is not None and r_off.telemetry is None


# ----------------------------------------------------------------------
# Structural trace checks on real runs.
# ----------------------------------------------------------------------
class TestTraceStructure:
    def test_mp_run_attributes_worker_time(self):
        g = power_law_web_graph(300, seed=3)
        result = _chromatic_run(g, True, "mp")
        tel = result.telemetry
        rep = summarize(tel)
        # Worker tracks on mp carry idle spans around pipe recv, so the
        # six phases cover nearly all worker wall time. The tier-1
        # floor is deliberately lenient (loaded CI boxes); the perf
        # guard pins the paper-grade >= 0.95 on the ALS workload.
        assert rep["attribution"] >= 0.75
        assert set(tel.worker_tracks()) == {0, 1}
        assert rep["dropped"] == 0
        assert tel.meta["engine"] == "chromatic"
        assert tel.meta["backend"] == "mp"
        # Spans never precede the run span's start on the merged clock.
        ((_, _, run_start, run_end, _, _),) = tel.spans("run")
        for (_track, _kind, start, end, _a, _b) in tel.events:
            assert start >= run_start - 0.5 and end <= run_end + 0.5
        assert validate_chrome_trace(chrome_trace(tel)) == []

    def test_locking_telemetry_meta_and_grants(self):
        g = power_law_web_graph(150, seed=5)
        result = _locking_run(g, True, "inproc")
        tel = result.telemetry
        assert tel.meta["engine"] == "locking"
        assert tel.meta["pipeline_window"] == 64
        rep = summarize(tel)
        # Every executed update completed exactly one lock chain.
        assert rep["grant_latency"]["count"] == result.num_updates
        assert rep["grant_latency"]["hist_us"]

    def test_window_distinguishes_occupancy(self):
        g1 = power_law_web_graph(150, seed=5)
        g64 = power_law_web_graph(150, seed=5)
        occ1 = summarize(
            _locking_run(g1, True, "inproc", window=1).telemetry
        )["grant_latency"]
        occ64 = summarize(
            _locking_run(g64, True, "inproc", window=64).telemetry
        )["grant_latency"]
        # window=1 admits one scope at a time: occupancy never exceeds
        # 1. window=64 keeps the pipeline full, which is the whole
        # point of Fig. 8b's latency-hiding argument.
        assert occ1["occupancy_max"] <= 1
        assert occ64["occupancy_max"] > 1
        assert occ64["occupancy_mean"] > occ1["occupancy_mean"]

    def test_plane_counters_on_typed_graph(self):
        g = power_law_web_graph(200, seed=3, typed=True)
        result = _chromatic_run(g, True, "mp")
        rep = summarize(result.telemetry)
        if result.data_plane == "shm":
            assert rep["plane"]["rounds"] > 0
            assert rep["plane"]["ring_v_entries"] > 0
        else:  # REPRO_NO_SHM=1 matrix leg: no plane, no counters.
            assert rep["plane"] == {}

    def test_snapshot_and_recovery_spans(self, tmp_path):
        g = power_law_web_graph(150, seed=9)
        engine = RuntimeChromaticEngine(
            g,
            pagerank_program(),
            num_workers=2,
            transport="inproc",
            snapshot_every=2,
            snapshot_dir=str(tmp_path),
            telemetry=True,
        )
        result = engine.run(initial=g.vertices())
        rep = summarize(result.telemetry)
        assert rep["snapshots"]["count"] >= 1
        assert rep["snapshots"]["seconds"] > 0.0
