"""Tests for the discrete-event kernel and synchronization primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import (
    Barrier,
    Channel,
    CountDownLatch,
    Resource,
    Semaphore,
    SimKernel,
)


class TestEventLoop:
    def test_time_advances_in_order(self):
        k = SimKernel()
        seen = []
        k.schedule(2.0, lambda: seen.append(("b", k.now)))
        k.schedule(1.0, lambda: seen.append(("a", k.now)))
        k.run()
        assert seen == [("a", 1.0), ("b", 2.0)]

    def test_fifo_at_same_timestamp(self):
        k = SimKernel()
        seen = []
        for i in range(5):
            k.schedule(1.0, seen.append, i)
        k.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        k = SimKernel()
        with pytest.raises(SimulationError):
            k.schedule(-1.0, lambda: None)

    def test_run_until(self):
        k = SimKernel()
        seen = []
        k.schedule(1.0, seen.append, 1)
        k.schedule(5.0, seen.append, 5)
        k.run(until=2.0)
        assert seen == [1]
        assert k.now == 2.0
        k.run()
        assert seen == [1, 5]

    def test_no_wallclock_dependency(self):
        k = SimKernel()
        k.schedule(1e9, lambda: None)  # a billion simulated seconds
        assert k.run() == 1e9


class TestProcesses:
    def test_process_returns_value(self):
        k = SimKernel()

        def worker():
            yield k.timeout(3.0)
            return "done"

        assert k.run_process(worker()) == "done"
        assert k.now == 3.0

    def test_process_awaits_process(self):
        k = SimKernel()

        def child():
            yield k.timeout(1.0)
            return 21

        def parent():
            value = yield k.spawn(child())
            return value * 2

        assert k.run_process(parent()) == 42

    def test_yield_list_waits_for_all(self):
        k = SimKernel()

        def child(d):
            yield k.timeout(d)
            return d

        def parent():
            values = yield [k.spawn(child(3.0)), k.spawn(child(1.0))]
            return values

        assert k.run_process(parent()) == [3.0, 1.0]
        assert k.now == 3.0

    def test_exception_propagates_to_awaiter(self):
        k = SimKernel()

        def bad():
            yield k.timeout(1.0)
            raise ValueError("boom")

        def parent():
            try:
                yield k.spawn(bad())
            except ValueError:
                return "caught"
            return "missed"

        assert k.run_process(parent()) == "caught"

    def test_uncaught_exception_raised_by_run(self):
        k = SimKernel()

        def bad():
            yield k.timeout(1.0)
            raise RuntimeError("unhandled")

        k.spawn(bad())
        with pytest.raises(RuntimeError, match="unhandled"):
            k.run()

    def test_deadlock_detection_in_run_process(self):
        k = SimKernel()

        def stuck():
            yield k.event()  # never resolved

        with pytest.raises(SimulationError, match="deadlock"):
            k.run_process(stuck())

    def test_bad_yield_type_fails_process(self):
        k = SimKernel()

        def bad():
            yield 42

        with pytest.raises(SimulationError, match="yielded"):
            k.run_process(bad())

    def test_spawn_requires_generator(self):
        k = SimKernel()
        with pytest.raises(SimulationError):
            k.spawn(lambda: None)

    def test_yield_none_cooperates(self):
        k = SimKernel()
        order = []

        def a():
            order.append("a1")
            yield None
            order.append("a2")

        def b():
            order.append("b1")
            yield None
            order.append("b2")

        k.spawn(a())
        k.spawn(b())
        k.run()
        assert order == ["a1", "b1", "a2", "b2"]


class TestFutures:
    def test_double_resolve_rejected(self):
        k = SimKernel()
        f = k.event()
        f.resolve(1)
        with pytest.raises(SimulationError):
            f.resolve(2)

    def test_value_before_resolve_rejected(self):
        k = SimKernel()
        with pytest.raises(SimulationError):
            _ = k.event().value

    def test_callback_after_done_still_fires(self):
        k = SimKernel()
        f = k.event()
        f.resolve("x")
        seen = []
        f.add_callback(lambda fut: seen.append(fut.value))
        k.run()
        assert seen == ["x"]

    def test_all_of_empty(self):
        k = SimKernel()
        f = k.all_of([])
        k.run()
        assert f.value == []


class TestResource:
    def test_serializes_beyond_capacity(self):
        k = SimKernel()
        res = Resource(k, capacity=2)
        finish = []

        def worker(i):
            yield res.acquire()
            yield k.timeout(1.0)
            res.release()
            finish.append((i, k.now))

        for i in range(4):
            k.spawn(worker(i))
        k.run()
        assert [t for _i, t in finish] == [1.0, 1.0, 2.0, 2.0]

    def test_release_without_acquire(self):
        k = SimKernel()
        with pytest.raises(SimulationError):
            Resource(k, 1).release()

    def test_capacity_validation(self):
        k = SimKernel()
        with pytest.raises(SimulationError):
            Resource(k, 0)

    def test_counters(self):
        k = SimKernel()
        res = Resource(k, 1)

        def worker():
            yield res.acquire()
            assert res.in_use == 1
            res.release()

        k.run_process(worker())
        assert res.in_use == 0 and res.queued == 0


class TestSemaphoreChannel:
    def test_semaphore_caps_concurrency(self):
        k = SimKernel()
        sem = Semaphore(k, 2)
        running = [0]
        peak = [0]

        def worker():
            yield sem.acquire()
            running[0] += 1
            peak[0] = max(peak[0], running[0])
            yield k.timeout(1.0)
            running[0] -= 1
            sem.release()

        for _ in range(6):
            k.spawn(worker())
        k.run()
        assert peak[0] == 2

    def test_channel_fifo(self):
        k = SimKernel()
        ch = Channel(k)
        got = []

        def consumer():
            for _ in range(3):
                item = yield ch.get()
                got.append(item)

        def producer():
            yield k.timeout(1.0)
            for i in range(3):
                ch.put(i)

        k.spawn(consumer())
        k.spawn(producer())
        k.run()
        assert got == [0, 1, 2]

    def test_channel_buffers_when_no_getter(self):
        k = SimKernel()
        ch = Channel(k)
        ch.put("a")
        assert len(ch) == 1

        def consumer():
            return (yield ch.get())

        assert k.run_process(consumer()) == "a"


class TestBarrierLatch:
    def test_barrier_releases_together(self):
        k = SimKernel()
        bar = Barrier(k, 3)
        times = []

        def party(delay):
            yield k.timeout(delay)
            yield bar.wait()
            times.append(k.now)

        for d in (1.0, 2.0, 5.0):
            k.spawn(party(d))
        k.run()
        assert times == [5.0, 5.0, 5.0]

    def test_barrier_reusable(self):
        k = SimKernel()
        bar = Barrier(k, 2)
        laps = []

        def party(i):
            for lap in range(2):
                yield k.timeout(i + 1.0)
                yield bar.wait()
                laps.append((i, lap, k.now))

        k.spawn(party(0))
        k.spawn(party(1))
        k.run()
        assert [t for _i, _l, t in laps] == [2.0, 2.0, 4.0, 4.0]

    def test_latch(self):
        k = SimKernel()
        latch = CountDownLatch(k, 2)

        def waiter():
            yield latch.future
            return k.now

        def worker():
            yield k.timeout(1.0)
            latch.count_down()
            yield k.timeout(1.0)
            latch.count_down()

        k.spawn(worker())
        assert k.run_process(waiter()) == 2.0

    def test_latch_zero_is_released(self):
        k = SimKernel()
        assert CountDownLatch(k, 0).future.done

    def test_latch_misuse(self):
        k = SimKernel()
        latch = CountDownLatch(k, 1)
        latch.count_down()
        with pytest.raises(SimulationError):
            latch.count_down()


@given(st.lists(st.floats(min_value=0.001, max_value=100), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_kernel_fires_in_nondecreasing_time(delays):
    """Property: event firing times are globally nondecreasing."""
    k = SimKernel()
    fired = []
    for d in delays:
        k.schedule(d, lambda: fired.append(k.now))
    k.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
