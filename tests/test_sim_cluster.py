"""Tests for machines, network, RPC, and cluster assembly."""

import pytest

from repro.errors import MachineFailureError, RPCError, SimulationError
from repro.sim import (
    CC1_4XLARGE,
    Cluster,
    Machine,
    MESSAGE_OVERHEAD_BYTES,
    Network,
    SimKernel,
)


class TestMachine:
    def test_execute_charges_cycles(self):
        k = SimKernel()
        m = Machine(k, 0, num_cores=1, clock_hz=1e9)

        def job():
            yield from m.execute(2e9)
            return k.now

        assert k.run_process(job()) == 2.0
        assert m.cycles_executed == 2e9
        assert m.busy_seconds == 2.0

    def test_cores_limit_parallelism(self):
        k = SimKernel()
        m = Machine(k, 0, num_cores=2, clock_hz=1e9)
        done = []

        def job(i):
            yield from m.execute(1e9)
            done.append((i, k.now))

        for i in range(4):
            k.spawn(job(i))
        k.run()
        assert [t for _i, t in done] == [1.0, 1.0, 2.0, 2.0]
        assert m.utilization(2.0) == pytest.approx(1.0)

    def test_slowdown_interval_integration(self):
        k = SimKernel()
        m = Machine(k, 0, num_cores=1, clock_hz=1e9)
        m.add_slowdown(1.0, 2.0, 0.5)  # half speed for 1 second
        # 2e9 cycles: 1s full speed (1e9), then 1s at half (0.5e9),
        # then 0.5s full -> total 2.5s.
        assert m.work_duration(2e9, 0.0) == pytest.approx(2.5)

    def test_halt_interval(self):
        k = SimKernel()
        m = Machine(k, 0, num_cores=1, clock_hz=1e9)
        m.add_slowdown(0.5, 15.5, 0.0)
        assert m.work_duration(1e9, 0.0) == pytest.approx(16.0)

    def test_overlapping_slowdowns_rejected(self):
        k = SimKernel()
        m = Machine(k, 0)
        m.add_slowdown(0.0, 2.0, 0.5)
        with pytest.raises(SimulationError):
            m.add_slowdown(1.0, 3.0, 0.5)

    def test_eternal_halt_detected(self):
        k = SimKernel()
        m = Machine(k, 0, clock_hz=1e9)
        m.add_slowdown(0.0, float("inf"), 0.0)
        with pytest.raises(SimulationError):
            m.work_duration(1.0, 0.0)

    def test_killed_machine_rejects_work(self):
        k = SimKernel()
        m = Machine(k, 0)
        m.kill()
        assert not m.alive
        with pytest.raises(MachineFailureError):
            # execute() raises before the first yield
            next(iter(m.execute(1.0)))
        m.restore()
        assert m.alive


class TestNetwork:
    def _net(self, n=2, **kw):
        k = SimKernel()
        net = Network(k, **kw)
        machines = [Machine(k, i) for i in range(n)]
        for m in machines:
            net.attach(m)
        return k, net, machines

    def test_delivery_time_includes_latency_and_serialization(self):
        k, net, _ = self._net(latency=0.01, bandwidth_bps=1e6)
        arrivals = []
        size = 1e6 - MESSAGE_OVERHEAD_BYTES  # 1 second on the wire
        net.send(0, 1, size, lambda p: arrivals.append((k.now, p)), "hi")
        k.run()
        assert arrivals == [(1.01, "hi")]

    def test_egress_serializes_messages(self):
        k, net, _ = self._net(latency=0.0, bandwidth_bps=1e6)
        arrivals = []
        size = 1e6 - MESSAGE_OVERHEAD_BYTES
        net.send(0, 1, size, lambda p: arrivals.append(k.now))
        net.send(0, 1, size, lambda p: arrivals.append(k.now))
        k.run()
        assert arrivals == [1.0, 2.0]

    def test_effective_bandwidth_cap(self):
        k, net, _ = self._net(
            latency=0.0, bandwidth_bps=1e9, effective_bandwidth_bps=1e6
        )
        assert net.rate == 1e6

    def test_local_send_is_free(self):
        k, net, _ = self._net()
        arrivals = []
        net.send(0, 0, 1e9, lambda p: arrivals.append(k.now))
        k.run()
        assert arrivals == [0.0]
        assert net.stats[0].bytes_sent == 0.0

    def test_byte_accounting(self):
        k, net, _ = self._net()
        net.send(0, 1, 1000, lambda p: None)
        k.run()
        assert net.stats[0].bytes_sent == 1000 + MESSAGE_OVERHEAD_BYTES
        assert net.stats[0].messages_sent == 1
        assert net.stats[1].bytes_received == 1000 + MESSAGE_OVERHEAD_BYTES
        assert net.total_bytes_sent() == 1000 + MESSAGE_OVERHEAD_BYTES
        assert net.mean_mbps_per_machine(1.0) == pytest.approx(
            (1000 + MESSAGE_OVERHEAD_BYTES) / 2 / 1e6
        )

    def test_messages_to_dead_machine_dropped(self):
        k, net, machines = self._net()
        machines[1].kill()
        arrivals = []
        net.send(0, 1, 100, lambda p: arrivals.append(p))
        k.run()
        assert arrivals == []
        assert net.stats[1].messages_received == 0

    def test_unknown_machine_rejected(self):
        k, net, _ = self._net()
        with pytest.raises(SimulationError):
            net.send(0, 9, 10, lambda p: None)

    def test_double_attach_rejected(self):
        k = SimKernel()
        net = Network(k)
        m = Machine(k, 0)
        net.attach(m)
        with pytest.raises(SimulationError):
            net.attach(m)


class TestRpc:
    def test_call_roundtrip(self):
        cluster = Cluster(2)
        cluster.rpc[1].register("add", lambda sender, a, b: a + b)

        def caller():
            return (yield cluster.rpc[0].call(1, "add", 100, 2, 3))

        assert cluster.kernel.run_process(caller()) == 5

    def test_generator_handler_waits(self):
        cluster = Cluster(2)
        k = cluster.kernel

        def slow_handler(sender, x):
            yield k.timeout(1.0)
            return x * 10

        cluster.rpc[1].register("slow", slow_handler)

        def caller():
            value = yield cluster.rpc[0].call(1, "slow", 100, 7)
            return value, k.now

        value, t = k.run_process(caller())
        assert value == 70
        assert t > 1.0

    def test_handler_exception_propagates_to_caller(self):
        cluster = Cluster(2)

        def bad(sender):
            raise ValueError("remote boom")

        cluster.rpc[1].register("bad", bad)

        def caller():
            try:
                yield cluster.rpc[0].call(1, "bad", 10)
            except ValueError as exc:
                return str(exc)

        assert cluster.kernel.run_process(caller()) == "remote boom"

    def test_missing_handler_fails_call(self):
        cluster = Cluster(2)

        def caller():
            try:
                yield cluster.rpc[0].call(1, "nope", 10)
            except RPCError:
                return "rpc-error"

        assert cluster.kernel.run_process(caller()) == "rpc-error"

    def test_cast_one_way(self):
        cluster = Cluster(2)
        seen = []
        cluster.rpc[1].register("note", lambda sender, x: seen.append((sender, x)))
        cluster.rpc[0].cast(1, "note", 50, "hello")
        cluster.kernel.run()
        assert seen == [(0, "hello")]

    def test_self_call_skips_network(self):
        cluster = Cluster(1)
        cluster.rpc[0].register("echo", lambda sender, x: x)

        def caller():
            return (yield cluster.rpc[0].call(0, "echo", 10, "x"))

        assert cluster.kernel.run_process(caller()) == "x"
        assert cluster.network.stats[0].bytes_sent == 0

    def test_duplicate_handler_rejected(self):
        cluster = Cluster(1)
        cluster.rpc[0].register("m", lambda s: None)
        with pytest.raises(RPCError):
            cluster.rpc[0].register("m", lambda s: None)


class TestCluster:
    def test_build_shape(self):
        cluster = Cluster(4)
        assert cluster.num_machines == 4
        assert cluster.total_cores == 32
        assert cluster.instance is CC1_4XLARGE
        assert cluster.machine(2).machine_id == 2

    def test_cost_fine_grained(self):
        cluster = Cluster(64)
        one_hour = cluster.cost(3600.0)
        assert one_hour == pytest.approx(64 * 1.30)
        assert cluster.cost(1800.0) == pytest.approx(one_hour / 2)

    def test_cost_rejects_negative(self):
        with pytest.raises(SimulationError):
            Cluster(1).cost(-1.0)

    def test_needs_at_least_one_machine(self):
        with pytest.raises(SimulationError):
            Cluster(0)
