"""Tests for execution tracing and the serializability checker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Trace, edge_key, vertex_key
from repro.errors import SerializabilityViolation


def _rec(trace, vertex, start, end, reads=(), writes=()):
    return trace.record(
        vertex, start, end, frozenset(reads), frozenset(writes)
    )


class TestConflictPredicate:
    def test_write_write_conflict(self):
        t = Trace()
        a = _rec(t, 0, 0, 1, writes=[vertex_key(0)])
        b = _rec(t, 1, 2, 3, writes=[vertex_key(0)])
        assert a.conflicts_with(b)

    def test_read_write_conflict(self):
        t = Trace()
        a = _rec(t, 0, 0, 1, reads=[vertex_key(5)])
        b = _rec(t, 1, 2, 3, writes=[vertex_key(5)])
        assert a.conflicts_with(b)
        assert b.conflicts_with(a)

    def test_read_read_no_conflict(self):
        t = Trace()
        a = _rec(t, 0, 0, 1, reads=[vertex_key(5)])
        b = _rec(t, 1, 0, 1, reads=[vertex_key(5)])
        assert not a.conflicts_with(b)

    def test_disjoint_keys_no_conflict(self):
        t = Trace()
        a = _rec(t, 0, 0, 1, writes=[vertex_key(0)])
        b = _rec(t, 1, 0, 1, writes=[edge_key(1, 2)])
        assert not a.conflicts_with(b)


class TestOverlap:
    def test_touching_endpoints_do_not_overlap(self):
        t = Trace()
        a = _rec(t, 0, 0, 1)
        b = _rec(t, 1, 1, 2)
        assert not a.overlaps(b)

    def test_nested_interval_overlaps(self):
        t = Trace()
        a = _rec(t, 0, 0, 10)
        b = _rec(t, 1, 3, 4)
        assert a.overlaps(b) and b.overlaps(a)


class TestSerializability:
    def test_serial_trace_is_serializable(self):
        t = Trace()
        for i in range(5):
            _rec(t, i, i, i + 1, writes=[vertex_key(0)])
        assert t.is_serializable()
        t.check()

    def test_concurrent_nonconflicting_is_serializable(self):
        t = Trace()
        _rec(t, 0, 0, 5, writes=[vertex_key(0)])
        _rec(t, 1, 0, 5, writes=[vertex_key(1)])
        assert t.is_serializable()

    def test_concurrent_conflicting_is_violation(self):
        t = Trace()
        _rec(t, 0, 0, 5, writes=[vertex_key(0)])
        _rec(t, 1, 2, 7, reads=[vertex_key(0)])
        assert not t.is_serializable()
        with pytest.raises(SerializabilityViolation):
            t.check()
        assert len(t.violations()) == 1

    def test_equivalent_serial_order_sorted_by_end(self):
        t = Trace()
        _rec(t, "b", 2, 4, writes=[vertex_key(1)])
        _rec(t, "a", 0, 1, writes=[vertex_key(1)])
        order = [e.vertex for e in t.equivalent_serial_order()]
        assert order == ["a", "b"]

    def test_equivalent_serial_order_raises_on_violation(self):
        t = Trace()
        _rec(t, 0, 0, 5, writes=[vertex_key(0)])
        _rec(t, 1, 1, 2, writes=[vertex_key(0)])
        with pytest.raises(SerializabilityViolation):
            t.equivalent_serial_order()

    def test_updates_per_vertex(self):
        t = Trace()
        _rec(t, "x", 0, 1)
        _rec(t, "x", 1, 2)
        _rec(t, "y", 2, 3)
        assert t.updates_per_vertex() == {"x": 2, "y": 1}

    def test_len_and_executions(self):
        t = Trace()
        _rec(t, 0, 0, 1)
        assert len(t) == 1
        assert t.executions[0].vertex == 0
        assert t.executions[0].seq == 0


@given(
    st.lists(
        st.tuples(
            st.integers(0, 5),          # vertex/key id
            st.floats(0, 50),           # start
            st.floats(0.1, 5),          # duration
            st.booleans(),              # writes (else reads)
        ),
        min_size=2,
        max_size=25,
    )
)
@settings(max_examples=80, deadline=None)
def test_violations_match_bruteforce(entries):
    """The sweep-based checker agrees with the O(n^2) definition."""
    t = Trace()
    for key, start, dur, is_write in entries:
        keys = [vertex_key(key)]
        _rec(
            t,
            key,
            start,
            start + dur,
            reads=[] if is_write else keys,
            writes=keys if is_write else [],
        )
    brute = 0
    execs = t.executions
    for i in range(len(execs)):
        for j in range(i + 1, len(execs)):
            a, b = execs[i], execs[j]
            if a.overlaps(b) and a.conflicts_with(b):
                brute += 1
    assert len(t.violations()) == brute


def _violations_quadratic(trace):
    """The pre-heap implementation of ``Trace.violations`` (kept here as
    the reference for the equivalence property): rebuild the active set
    with a linear filter at every step."""
    found = []
    by_start = sorted(trace.executions, key=lambda e: (e.start, e.seq))
    active = []
    for execution in by_start:
        still_active = [e for e in active if e.end > execution.start]
        for other in still_active:
            if execution.conflicts_with(other):
                found.append((other, execution))
        still_active.append(execution)
        active = still_active
    return found


@given(
    st.lists(
        st.tuples(
            st.integers(0, 4),          # vertex/key id
            st.floats(0, 20),           # start
            st.floats(0, 3),            # duration (0 allowed: instant)
            st.booleans(),              # writes (else reads)
        ),
        min_size=0,
        max_size=30,
    )
)
@settings(max_examples=80, deadline=None)
def test_violations_heap_matches_quadratic_reference(entries):
    """The end-time-heap sweep returns the *identical pair list* (same
    pairs, same order) as the old quadratic active-set rebuild,
    including zero-length intervals and tied starts."""
    t = Trace()
    for key, start, dur, is_write in entries:
        keys = [vertex_key(key)]
        _rec(
            t,
            key,
            start,
            start + dur,
            reads=[] if is_write else keys,
            writes=keys if is_write else [],
        )
    assert t.violations() == _violations_quadratic(t)


class TestGatherInRecording:
    """Regression (ISSUE 3 satellite): ``Scope.gather_in`` takes the
    compiled-CSR fast path even when tracing, and must record exactly
    the read set the slow per-call path records — one edge key and one
    vertex key per in-neighbor."""

    def _graph(self):
        from repro.core import DataGraph

        g = DataGraph()
        for i in range(4):
            g.add_vertex(i, data=float(i))
        g.add_edge(1, 0, data=0.5)
        g.add_edge(2, 0, data=0.25)
        g.add_edge(0, 3, data=0.125)
        return g.finalize()

    def test_traced_gather_records_slow_path_read_set(self):
        from repro.core import Consistency, Scope

        g = self._graph()
        scope = Scope(g, 0, model=Consistency.EDGE, record=True)
        gathered = scope.gather_in()
        assert [(u, e, d) for (u, e, d) in gathered] == [
            (1, 0.5, 1.0),
            (2, 0.25, 2.0),
        ]
        expected = {
            edge_key(1, 0),
            edge_key(2, 0),
            vertex_key(1),
            vertex_key(2),
        }
        assert scope.reads == expected
        # An untraced scope records nothing (single falsy check).
        silent = Scope(g, 0, model=Consistency.EDGE)
        silent.gather_in()
        assert silent.reads == set()

    def test_traced_engine_run_serializability_still_checks(self):
        """End to end: a traced SequentialEngine run over a gather_in
        update produces a serializable trace with non-empty read sets."""
        from repro.core import SequentialEngine

        def gather_update(scope):
            total = scope.data
            for _u, weight, value in scope.gather_in():
                total += weight * value
            scope.data = total

        g = self._graph()
        result = SequentialEngine(
            g, gather_update, scheduler="fifo", trace=True
        ).run(initial=g.vertices())
        assert result.trace is not None
        recorded = [e for e in result.trace.executions if e.reads]
        assert recorded, "gather_in reads must appear in the trace"
        assert result.trace.violations() == []
