"""Snapshots and crash/recover equivalence on the runtime engines.

The fault-tolerance contract (paper Sec. 4.3, PR 6):

* **Chromatic**: snapshots are taken at sweep barriers, where execution
  is deterministic — a run that loses a worker mid-flight and recovers
  from the last snapshot finishes **bit-identical** to an unkilled run.
* **Locking**: execution is only conflict-serializable, so the promise
  after recovery is **fixed-point equivalence** with the sequential
  oracle, for both the synchronous (drain-to-quiescence) snapshot and
  the asynchronous Chandy–Lamport snapshot of Alg. 5.
* Recovery happens inside ``run()`` — no coordinator restart — and the
  respawned cluster keeps going through *further* failures up to
  ``max_recoveries``.

Both ``use_plane`` settings run, pinning the shm and the pipe wire
(``REPRO_NO_SHM`` CI lane re-runs the whole file without shm anyway).
"""

import os

import pytest

from repro.apps.pagerank import make_pagerank_update
from repro.datasets.webgraph import power_law_web_graph
from repro.errors import SnapshotError, EngineError
from repro.runtime import (
    CheckpointManager,
    RuntimeChromaticEngine,
    RuntimeLockingEngine,
    SnapshotCadence,
    SnapshotDirectory,
    UpdateProgram,
    WorkerFailure,
    merge_journals,
)

from repro.runtime.transport import FAULT_ENV

from tests.helpers import grid_graph


@pytest.fixture(autouse=True)
def _clear_fault_env(monkeypatch):
    """Every kill here is scheduled explicitly; an ambient REPRO_FAULT
    (the CI fault lane sets one job-wide) must not add extras."""
    monkeypatch.delenv(FAULT_ENV, raising=False)


def flood_max(scope):
    best = scope.data
    for u in scope.neighbors:
        best = max(best, scope.neighbor(u))
    if best != scope.data:
        scope.data = best
        return [(u, best) for u in scope.neighbors]


PAGERANK = UpdateProgram(
    make_pagerank_update, kwargs={"schedule": "out", "epsilon": 1e-4}
)


def web(n=60):
    return power_law_web_graph(n, out_degree=3, seed=11)


def ranks(graph):
    return {v: graph.vertex_data(v) for v in graph.vertices()}


def clean_chromatic(transport="inproc", **kw):
    g = web()
    result = RuntimeChromaticEngine(
        g, PAGERANK, num_workers=2, transport=transport,
        max_sweeps=100, **kw,
    ).run(initial=g.vertices())
    return ranks(g), result


class TestChromaticCrashRecover:
    """Bit-identity through kill + respawn + rollback."""

    @pytest.mark.parametrize("kill_round", [0, 1, 5, 9])
    @pytest.mark.parametrize("use_plane", [True, False])
    def test_inproc_bit_identical(self, kill_round, use_plane):
        clean, _ = clean_chromatic(use_plane=use_plane)
        g = web()
        engine = RuntimeChromaticEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
            max_sweeps=100, use_plane=use_plane,
            snapshot_every=2, recovery_backoff=0.0,
        )
        engine.transport.schedule_kill(1, kill_round)
        result = engine.run(initial=g.vertices())
        assert result.extra["recoveries"] == 1
        assert result.extra["snapshots"] >= 1
        assert ranks(g) == clean

    def test_mp_bit_identical(self):
        clean, _ = clean_chromatic(transport="mp")
        g = web()
        engine = RuntimeChromaticEngine(
            g, PAGERANK, num_workers=2, transport="mp",
            max_sweeps=100, snapshot_every=2, recovery_backoff=0.0,
        )
        engine.transport.schedule_kill(0, 4)
        result = engine.run(initial=g.vertices())
        assert result.extra["recoveries"] == 1
        assert ranks(g) == clean

    def test_two_failures_two_recoveries(self):
        clean, _ = clean_chromatic()
        g = web()
        engine = RuntimeChromaticEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
            max_sweeps=100, snapshot_every=2, recovery_backoff=0.0,
        )
        engine.transport.schedule_kill(1, 3)
        engine.transport.schedule_kill(0, 9)
        result = engine.run(initial=g.vertices())
        assert result.extra["recoveries"] == 2
        assert ranks(g) == clean

    def test_max_recoveries_exceeded(self):
        g = web()
        engine = RuntimeChromaticEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
            max_sweeps=100, snapshot_every=2,
            max_recoveries=1, recovery_backoff=0.0,
        )
        engine.transport.schedule_kill(1, 3)
        engine.transport.schedule_kill(0, 7)
        with pytest.raises(WorkerFailure):
            engine.run(initial=g.vertices())

    def test_no_snapshots_means_no_recovery(self):
        g = web()
        engine = RuntimeChromaticEngine(
            g, PAGERANK, num_workers=2, transport="inproc", max_sweeps=100
        )
        engine.transport.schedule_kill(1, 3)
        with pytest.raises(WorkerFailure):
            engine.run(initial=g.vertices())

    def test_snapshots_persist_to_user_dir(self, tmp_path):
        g = web()
        result = RuntimeChromaticEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
            max_sweeps=100, snapshot_every=2,
            snapshot_dir=str(tmp_path),
        ).run(initial=g.vertices())
        directory = SnapshotDirectory(str(tmp_path))
        assert directory.latest() is not None
        meta = directory.read_meta(directory.latest())
        assert meta["engine"] == "chromatic"
        assert result.extra["snapshot_bytes"] > 0

    def test_typed_kernel_graph_recovers(self):
        """Kill + recover on a typed-column graph (kernel fast path)."""
        g1 = web()
        RuntimeChromaticEngine(
            g1, PAGERANK, num_workers=2, transport="inproc",
            max_sweeps=40,
        ).run(initial=g1.vertices())
        g2 = web()
        engine = RuntimeChromaticEngine(
            g2, PAGERANK, num_workers=2, transport="inproc",
            max_sweeps=40, snapshot_every=3, recovery_backoff=0.0,
        )
        engine.transport.schedule_kill(0, 6)
        result = engine.run(initial=g2.vertices())
        assert result.extra["recoveries"] == 1
        assert ranks(g2) == ranks(g1)


class TestLockingCrashRecover:
    """Fixed-point equivalence through kill + respawn + rollback."""

    def _clean(self):
        g = web()
        RuntimeLockingEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
        ).run(initial=g.vertices())
        return ranks(g)

    @pytest.mark.parametrize("mode", ["sync", "async"])
    @pytest.mark.parametrize("use_plane", [True, False])
    def test_inproc_fixed_point(self, mode, use_plane):
        clean = self._clean()
        g = web()
        engine = RuntimeLockingEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
            use_plane=use_plane, snapshot_every=3,
            snapshot_mode=mode, recovery_backoff=0.0,
        )
        engine.transport.schedule_kill(1, 6)
        result = engine.run(initial=g.vertices())
        assert result.converged
        assert result.extra["recoveries"] == 1
        got = ranks(g)
        for v, rank in clean.items():
            assert got[v] == pytest.approx(rank, abs=1e-3)

    @pytest.mark.parametrize("mode", ["sync", "async"])
    def test_mp_fixed_point(self, mode):
        clean = self._clean()
        g = web()
        engine = RuntimeLockingEngine(
            g, PAGERANK, num_workers=2, transport="mp",
            snapshot_every=3, snapshot_mode=mode, recovery_backoff=0.0,
        )
        engine.transport.schedule_kill(0, 6)
        result = engine.run(initial=g.vertices())
        assert result.converged
        assert result.extra["recoveries"] == 1
        got = ranks(g)
        for v, rank in clean.items():
            assert got[v] == pytest.approx(rank, abs=1e-3)

    def test_kill_at_round_zero_recovers_from_baseline(self):
        clean = self._clean()
        g = web()
        engine = RuntimeLockingEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
            snapshot_every=1000, recovery_backoff=0.0,
        )
        engine.transport.schedule_kill(1, 0)
        result = engine.run(initial=g.vertices())
        # Only the baseline snapshot existed; the whole run replays.
        assert result.converged
        assert result.extra["recoveries"] == 1
        got = ranks(g)
        for v, rank in clean.items():
            assert got[v] == pytest.approx(rank, abs=1e-3)

    def test_async_snapshot_covers_whole_graph(self, tmp_path):
        """The Chandy–Lamport cut journals every vertex and edge."""
        g = web()
        RuntimeLockingEngine(
            g, PAGERANK, num_workers=3, transport="inproc",
            snapshot_every=2, snapshot_mode="async",
            snapshot_dir=str(tmp_path),
        ).run(initial=g.vertices())
        directory = SnapshotDirectory(str(tmp_path))
        latest = directory.latest()
        assert latest is not None
        journals = [directory.read_journal(latest, w) for w in range(3)]
        merged = merge_journals(journals)
        assert set(merged["vdata"]) == set(g.vertices())
        assert set(merged["edata"]) == set(g.edges())
        # Async snapshots exist alongside the sync baseline.
        metas = [
            directory.read_meta(s)
            for s in directory.snapshot_ids()
            if directory.is_complete(s)
        ]
        assert any(m["mode"] == "async" for m in metas)

    def test_bad_snapshot_mode_rejected(self):
        with pytest.raises(EngineError):
            RuntimeLockingEngine(
                grid_graph(2, 2), flood_max, num_workers=1,
                transport="inproc", snapshot_mode="lazy",
            )


class TestCheckpointManager:
    def test_write_read_roundtrip(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), 2)
        journals = [
            {"vdata": {"v:0": 1.0}, "edata": {}, "versions": {"v:0": 3}},
            {"vdata": {"v:1": 2.0}, "edata": {}, "versions": {"v:1": 4}},
        ]
        sid = manager.next_id()
        manager.write(sid, journals, {"engine": "test", "rounds": 7})
        got_sid, meta, got = manager.latest_state()
        assert got_sid == sid
        assert meta["rounds"] == 7
        assert got == journals
        merged = merge_journals(got)
        assert merged["vdata"] == {"v:0": 1.0, "v:1": 2.0}
        assert merged["versions"] == {"v:0": 3, "v:1": 4}

    def test_incomplete_snapshot_is_not_a_recovery_point(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), 1)
        sid = manager.next_id()
        manager.dir.write_journal(sid, 0, {"vdata": {}})
        with pytest.raises(SnapshotError):
            manager.latest_state()

    def test_finalize_async_requires_all_journals(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), 2)
        sid = manager.next_id()
        manager.dir.write_journal(sid, 0, {"vdata": {}})
        with pytest.raises(SnapshotError):
            manager.finalize_async(sid, {})

    def test_ids_never_reuse_partial_directories(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), 1)
        sid = manager.next_id()
        manager.dir.write_journal(sid, 0, {"vdata": {}})
        fresh = CheckpointManager(str(tmp_path), 1)
        assert fresh.next_id() == sid + 1


class TestSnapshotIntegrity:
    """Tentpole: per-file CRCs + manifest; load-time verification
    rejects corrupt/truncated snapshots and falls back to the previous
    valid one."""

    def _write_one(self, manager, value=1.0):
        journals = [
            {"vdata": {"v:0": value}, "edata": {}, "versions": {"v:0": 1}},
            {"vdata": {"v:1": value}, "edata": {}, "versions": {"v:1": 1}},
        ]
        sid = manager.next_id()
        manager.write(sid, journals, {"engine": "test", "value": value})
        return sid

    def test_manifest_written_and_verifies(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), 2)
        sid = self._write_one(manager)
        entries = manager.dir.read_manifest(sid)
        assert set(entries) == {"machine-0", "machine-1", "meta"}
        for record in entries.values():
            assert record["bytes"] > 0
            assert 0 <= record["crc32"] <= 0xFFFFFFFF
        manager.dir.verify(sid, 2)  # does not raise

    def test_atomic_writes_leave_no_tmp_files(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), 2)
        sid = self._write_one(manager)
        leftovers = [
            name
            for name in os.listdir(manager.dir.snapshot_dir(sid))
            if name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_corrupt_journal_rejected_with_filename(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), 2)
        sid = self._write_one(manager)
        path = manager.dir.journal_path(sid, 1)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:  # flip one byte, same size
            fh.write(blob[:-1] + bytes([blob[-1] ^ 0xFF]))
        with pytest.raises(SnapshotError) as info:
            manager.dir.verify(sid, 2)
        assert "machine-1" in str(info.value)
        assert "CRC32" in str(info.value)

    def test_truncated_journal_rejected(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), 2)
        sid = self._write_one(manager)
        path = manager.dir.journal_path(sid, 0)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        with pytest.raises(SnapshotError) as info:
            manager.dir.verify(sid, 2)
        assert "machine-0" in str(info.value)
        assert "truncated" in str(info.value)

    def test_missing_manifest_rejected(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), 2)
        sid = self._write_one(manager)
        os.remove(
            os.path.join(manager.dir.snapshot_dir(sid), "MANIFEST")
        )
        with pytest.raises(SnapshotError):
            manager.dir.verify(sid, 2)

    def test_latest_state_falls_back_to_previous_valid(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), 2)
        good = self._write_one(manager, value=1.0)
        bad = self._write_one(manager, value=2.0)
        path = manager.dir.journal_path(bad, 0)
        with open(path, "wb") as fh:
            fh.write(b"garbage")
        sid, meta, journals = manager.latest_state()
        assert sid == good
        assert meta["value"] == 1.0
        assert manager.snapshots_rejected == 1

    def test_all_snapshots_damaged_raises_with_list(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), 1)
        sid = manager.next_id()
        manager.write(sid, [{"vdata": {}}], {})
        with open(manager.dir.journal_path(sid, 0), "wb") as fh:
            fh.write(b"garbage")
        with pytest.raises(SnapshotError) as info:
            manager.latest_state()
        assert "failed integrity verification" in str(info.value)
        assert f"snapshot {sid}" in str(info.value)

    def test_finalize_async_builds_manifest_from_reported_crcs(
        self, tmp_path
    ):
        manager = CheckpointManager(str(tmp_path), 2)
        sid = manager.next_id()
        crcs = {}
        for w in range(2):
            _nbytes, crcs[w] = manager.dir.write_journal(
                sid, w, {"vdata": {f"v:{w}": float(w)}}
            )
        manager.finalize_async(sid, {"engine": "test"}, crcs=crcs)
        manager.dir.verify(sid, 2)
        got_sid, _meta, _journals = manager.latest_state()
        assert got_sid == sid

    def test_env_knob_corrupts_scheduled_snapshot(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(FAULT_ENV, "1:1:corrupt_snapshot")
        manager = CheckpointManager(str(tmp_path), 2)
        first = self._write_one(manager, value=1.0)
        second = self._write_one(manager, value=2.0)
        assert second == 1
        with pytest.raises(SnapshotError):
            manager.dir.verify(second, 2)
        sid, meta, _ = manager.latest_state()
        assert sid == first
        assert manager.snapshots_rejected == 1

    def test_schedule_corruption_validates_worker(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), 2)
        with pytest.raises(SnapshotError):
            manager.schedule_corruption(5, 0)


class TestResumeFromDisk:
    """Tentpole: ``run(resume_from=...)`` cold-restarts a crashed run
    from its snapshot directory, rejecting damaged snapshots on the
    way."""

    def _crashed_run(self, tmp_path):
        g = web()
        engine = RuntimeChromaticEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
            max_sweeps=100, snapshot_every=1,
            snapshot_dir=str(tmp_path), max_recoveries=0,
        )
        engine.transport.schedule_kill(1, 6)
        with pytest.raises(WorkerFailure):
            engine.run(initial=g.vertices())

    def test_chromatic_resume_bit_identical(self, tmp_path):
        clean, _ = clean_chromatic()
        self._crashed_run(tmp_path)
        g = web()
        result = RuntimeChromaticEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
            max_sweeps=100, snapshot_every=1,
        ).run(initial=g.vertices(), resume_from=str(tmp_path))
        assert result.converged
        assert result.extra["resume_seconds"] >= 0.0
        assert ranks(g) == clean

    def test_resume_rejects_corrupt_then_falls_back(self, tmp_path):
        clean, _ = clean_chromatic()
        self._crashed_run(tmp_path)
        directory = SnapshotDirectory(str(tmp_path))
        newest = directory.latest()
        assert newest is not None and newest >= 1
        with open(directory.journal_path(newest, 0), "wb") as fh:
            fh.write(b"repro-corrupt-snapshot")
        g = web()
        result = RuntimeChromaticEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
            max_sweeps=100, snapshot_every=1,
        ).run(initial=g.vertices(), resume_from=str(tmp_path))
        assert result.converged
        assert result.extra["snapshots_rejected"] >= 1
        assert ranks(g) == clean

    def test_locking_resume_fixed_point(self, tmp_path):
        g_clean = web()
        RuntimeLockingEngine(
            g_clean, PAGERANK, num_workers=2, transport="inproc",
        ).run(initial=g_clean.vertices())
        clean = ranks(g_clean)
        g = web()
        engine = RuntimeLockingEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
            snapshot_every=3, snapshot_dir=str(tmp_path),
            max_recoveries=0,
        )
        engine.transport.schedule_kill(1, 6)
        with pytest.raises(WorkerFailure):
            engine.run(initial=g.vertices())
        g2 = web()
        result = RuntimeLockingEngine(
            g2, PAGERANK, num_workers=2, transport="inproc",
            snapshot_every=3,
        ).run(initial=g2.vertices(), resume_from=str(tmp_path))
        assert result.converged
        assert result.extra["resume_seconds"] >= 0.0
        got = ranks(g2)
        for v, rank in clean.items():
            assert got[v] == pytest.approx(rank, abs=1e-3)

    def test_resume_requires_snapshots(self, tmp_path):
        g = web()
        engine = RuntimeChromaticEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
        )
        with pytest.raises(EngineError):
            engine.run(initial=g.vertices(), resume_from=str(tmp_path))

    def test_resume_from_empty_dir_raises(self, tmp_path):
        g = web()
        engine = RuntimeChromaticEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
            snapshot_every=2,
        )
        with pytest.raises(SnapshotError):
            engine.run(initial=g.vertices(), resume_from=str(tmp_path))


class TestAsyncSnapshotNoShm:
    """Satellite: recovery with ``snapshot_mode="async"`` combined with
    the pickled wire (``use_plane=False`` inproc, ``REPRO_NO_SHM=1``
    mp) — the corner the CI lanes previously only covered separately."""

    def test_inproc_async_no_plane_recovers(self):
        g_clean = web()
        RuntimeLockingEngine(
            g_clean, PAGERANK, num_workers=2, transport="inproc",
            use_plane=False,
        ).run(initial=g_clean.vertices())
        clean = ranks(g_clean)
        g = web()
        engine = RuntimeLockingEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
            use_plane=False, snapshot_every=3, snapshot_mode="async",
            recovery_backoff=0.0,
        )
        engine.transport.schedule_kill(1, 6)
        result = engine.run(initial=g.vertices())
        assert result.converged
        assert result.extra["recoveries"] == 1
        assert result.data_plane is None
        got = ranks(g)
        for v, rank in clean.items():
            assert got[v] == pytest.approx(rank, abs=1e-3)

    def test_mp_async_no_shm_recovers(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        g_clean = web()
        RuntimeLockingEngine(
            g_clean, PAGERANK, num_workers=2, transport="inproc",
        ).run(initial=g_clean.vertices())
        clean = ranks(g_clean)
        g = web()
        engine = RuntimeLockingEngine(
            g, PAGERANK, num_workers=2, transport="mp",
            snapshot_every=3, snapshot_mode="async",
            recovery_backoff=0.0,
        )
        engine.transport.schedule_kill(0, 6)
        result = engine.run(initial=g.vertices())
        assert result.converged
        assert result.extra["recoveries"] == 1
        assert result.data_plane is None
        got = ranks(g)
        for v, rank in clean.items():
            assert got[v] == pytest.approx(rank, abs=1e-3)


class TestSnapshotCadence:
    def test_count_mode(self):
        cadence = SnapshotCadence(3, 4)
        assert not cadence.due(2, 0.0)
        assert cadence.due(3, 0.0)
        cadence.mark(3, 0.0)
        assert not cadence.due(5, 100.0)
        assert cadence.due(6, 100.0)

    def test_auto_mode_needs_a_first_measurement(self):
        cadence = SnapshotCadence("auto", 64)
        assert not cadence.due(0, 0.0)
        cadence.mark(0, 0.0, cost=120.0)
        # Young's interval for 64 workers, 120 s checkpoints: ~3 h.
        assert not cadence.due(0, 3600.0)
        assert cadence.due(0, 4 * 3600.0)

    @pytest.mark.parametrize("bad", [0, -1, True, "often", 2.5])
    def test_rejects_bad_cadence(self, bad):
        with pytest.raises(SnapshotError):
            SnapshotCadence(bad, 2)
