"""Snapshots and crash/recover equivalence on the runtime engines.

The fault-tolerance contract (paper Sec. 4.3, PR 6):

* **Chromatic**: snapshots are taken at sweep barriers, where execution
  is deterministic — a run that loses a worker mid-flight and recovers
  from the last snapshot finishes **bit-identical** to an unkilled run.
* **Locking**: execution is only conflict-serializable, so the promise
  after recovery is **fixed-point equivalence** with the sequential
  oracle, for both the synchronous (drain-to-quiescence) snapshot and
  the asynchronous Chandy–Lamport snapshot of Alg. 5.
* Recovery happens inside ``run()`` — no coordinator restart — and the
  respawned cluster keeps going through *further* failures up to
  ``max_recoveries``.

Both ``use_plane`` settings run, pinning the shm and the pipe wire
(``REPRO_NO_SHM`` CI lane re-runs the whole file without shm anyway).
"""

import pytest

from repro.apps.pagerank import make_pagerank_update
from repro.datasets.webgraph import power_law_web_graph
from repro.errors import SnapshotError, EngineError
from repro.runtime import (
    CheckpointManager,
    RuntimeChromaticEngine,
    RuntimeLockingEngine,
    SnapshotCadence,
    SnapshotDirectory,
    UpdateProgram,
    WorkerFailure,
    merge_journals,
)

from repro.runtime.transport import FAULT_ENV

from tests.helpers import grid_graph


@pytest.fixture(autouse=True)
def _clear_fault_env(monkeypatch):
    """Every kill here is scheduled explicitly; an ambient REPRO_FAULT
    (the CI fault lane sets one job-wide) must not add extras."""
    monkeypatch.delenv(FAULT_ENV, raising=False)


def flood_max(scope):
    best = scope.data
    for u in scope.neighbors:
        best = max(best, scope.neighbor(u))
    if best != scope.data:
        scope.data = best
        return [(u, best) for u in scope.neighbors]


PAGERANK = UpdateProgram(
    make_pagerank_update, kwargs={"schedule": "out", "epsilon": 1e-4}
)


def web(n=60):
    return power_law_web_graph(n, out_degree=3, seed=11)


def ranks(graph):
    return {v: graph.vertex_data(v) for v in graph.vertices()}


def clean_chromatic(transport="inproc", **kw):
    g = web()
    result = RuntimeChromaticEngine(
        g, PAGERANK, num_workers=2, transport=transport,
        max_sweeps=100, **kw,
    ).run(initial=g.vertices())
    return ranks(g), result


class TestChromaticCrashRecover:
    """Bit-identity through kill + respawn + rollback."""

    @pytest.mark.parametrize("kill_round", [0, 1, 5, 9])
    @pytest.mark.parametrize("use_plane", [True, False])
    def test_inproc_bit_identical(self, kill_round, use_plane):
        clean, _ = clean_chromatic(use_plane=use_plane)
        g = web()
        engine = RuntimeChromaticEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
            max_sweeps=100, use_plane=use_plane,
            snapshot_every=2, recovery_backoff=0.0,
        )
        engine.transport.schedule_kill(1, kill_round)
        result = engine.run(initial=g.vertices())
        assert result.extra["recoveries"] == 1
        assert result.extra["snapshots"] >= 1
        assert ranks(g) == clean

    def test_mp_bit_identical(self):
        clean, _ = clean_chromatic(transport="mp")
        g = web()
        engine = RuntimeChromaticEngine(
            g, PAGERANK, num_workers=2, transport="mp",
            max_sweeps=100, snapshot_every=2, recovery_backoff=0.0,
        )
        engine.transport.schedule_kill(0, 4)
        result = engine.run(initial=g.vertices())
        assert result.extra["recoveries"] == 1
        assert ranks(g) == clean

    def test_two_failures_two_recoveries(self):
        clean, _ = clean_chromatic()
        g = web()
        engine = RuntimeChromaticEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
            max_sweeps=100, snapshot_every=2, recovery_backoff=0.0,
        )
        engine.transport.schedule_kill(1, 3)
        engine.transport.schedule_kill(0, 9)
        result = engine.run(initial=g.vertices())
        assert result.extra["recoveries"] == 2
        assert ranks(g) == clean

    def test_max_recoveries_exceeded(self):
        g = web()
        engine = RuntimeChromaticEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
            max_sweeps=100, snapshot_every=2,
            max_recoveries=1, recovery_backoff=0.0,
        )
        engine.transport.schedule_kill(1, 3)
        engine.transport.schedule_kill(0, 7)
        with pytest.raises(WorkerFailure):
            engine.run(initial=g.vertices())

    def test_no_snapshots_means_no_recovery(self):
        g = web()
        engine = RuntimeChromaticEngine(
            g, PAGERANK, num_workers=2, transport="inproc", max_sweeps=100
        )
        engine.transport.schedule_kill(1, 3)
        with pytest.raises(WorkerFailure):
            engine.run(initial=g.vertices())

    def test_snapshots_persist_to_user_dir(self, tmp_path):
        g = web()
        result = RuntimeChromaticEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
            max_sweeps=100, snapshot_every=2,
            snapshot_dir=str(tmp_path),
        ).run(initial=g.vertices())
        directory = SnapshotDirectory(str(tmp_path))
        assert directory.latest() is not None
        meta = directory.read_meta(directory.latest())
        assert meta["engine"] == "chromatic"
        assert result.extra["snapshot_bytes"] > 0

    def test_typed_kernel_graph_recovers(self):
        """Kill + recover on a typed-column graph (kernel fast path)."""
        g1 = web()
        RuntimeChromaticEngine(
            g1, PAGERANK, num_workers=2, transport="inproc",
            max_sweeps=40,
        ).run(initial=g1.vertices())
        g2 = web()
        engine = RuntimeChromaticEngine(
            g2, PAGERANK, num_workers=2, transport="inproc",
            max_sweeps=40, snapshot_every=3, recovery_backoff=0.0,
        )
        engine.transport.schedule_kill(0, 6)
        result = engine.run(initial=g2.vertices())
        assert result.extra["recoveries"] == 1
        assert ranks(g2) == ranks(g1)


class TestLockingCrashRecover:
    """Fixed-point equivalence through kill + respawn + rollback."""

    def _clean(self):
        g = web()
        RuntimeLockingEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
        ).run(initial=g.vertices())
        return ranks(g)

    @pytest.mark.parametrize("mode", ["sync", "async"])
    @pytest.mark.parametrize("use_plane", [True, False])
    def test_inproc_fixed_point(self, mode, use_plane):
        clean = self._clean()
        g = web()
        engine = RuntimeLockingEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
            use_plane=use_plane, snapshot_every=3,
            snapshot_mode=mode, recovery_backoff=0.0,
        )
        engine.transport.schedule_kill(1, 6)
        result = engine.run(initial=g.vertices())
        assert result.converged
        assert result.extra["recoveries"] == 1
        got = ranks(g)
        for v, rank in clean.items():
            assert got[v] == pytest.approx(rank, abs=1e-3)

    @pytest.mark.parametrize("mode", ["sync", "async"])
    def test_mp_fixed_point(self, mode):
        clean = self._clean()
        g = web()
        engine = RuntimeLockingEngine(
            g, PAGERANK, num_workers=2, transport="mp",
            snapshot_every=3, snapshot_mode=mode, recovery_backoff=0.0,
        )
        engine.transport.schedule_kill(0, 6)
        result = engine.run(initial=g.vertices())
        assert result.converged
        assert result.extra["recoveries"] == 1
        got = ranks(g)
        for v, rank in clean.items():
            assert got[v] == pytest.approx(rank, abs=1e-3)

    def test_kill_at_round_zero_recovers_from_baseline(self):
        clean = self._clean()
        g = web()
        engine = RuntimeLockingEngine(
            g, PAGERANK, num_workers=2, transport="inproc",
            snapshot_every=1000, recovery_backoff=0.0,
        )
        engine.transport.schedule_kill(1, 0)
        result = engine.run(initial=g.vertices())
        # Only the baseline snapshot existed; the whole run replays.
        assert result.converged
        assert result.extra["recoveries"] == 1
        got = ranks(g)
        for v, rank in clean.items():
            assert got[v] == pytest.approx(rank, abs=1e-3)

    def test_async_snapshot_covers_whole_graph(self, tmp_path):
        """The Chandy–Lamport cut journals every vertex and edge."""
        g = web()
        RuntimeLockingEngine(
            g, PAGERANK, num_workers=3, transport="inproc",
            snapshot_every=2, snapshot_mode="async",
            snapshot_dir=str(tmp_path),
        ).run(initial=g.vertices())
        directory = SnapshotDirectory(str(tmp_path))
        latest = directory.latest()
        assert latest is not None
        journals = [directory.read_journal(latest, w) for w in range(3)]
        merged = merge_journals(journals)
        assert set(merged["vdata"]) == set(g.vertices())
        assert set(merged["edata"]) == set(g.edges())
        # Async snapshots exist alongside the sync baseline.
        metas = [
            directory.read_meta(s)
            for s in directory.snapshot_ids()
            if directory.is_complete(s)
        ]
        assert any(m["mode"] == "async" for m in metas)

    def test_bad_snapshot_mode_rejected(self):
        with pytest.raises(EngineError):
            RuntimeLockingEngine(
                grid_graph(2, 2), flood_max, num_workers=1,
                transport="inproc", snapshot_mode="lazy",
            )


class TestCheckpointManager:
    def test_write_read_roundtrip(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), 2)
        journals = [
            {"vdata": {"v:0": 1.0}, "edata": {}, "versions": {"v:0": 3}},
            {"vdata": {"v:1": 2.0}, "edata": {}, "versions": {"v:1": 4}},
        ]
        sid = manager.next_id()
        manager.write(sid, journals, {"engine": "test", "rounds": 7})
        got_sid, meta, got = manager.latest_state()
        assert got_sid == sid
        assert meta["rounds"] == 7
        assert got == journals
        merged = merge_journals(got)
        assert merged["vdata"] == {"v:0": 1.0, "v:1": 2.0}
        assert merged["versions"] == {"v:0": 3, "v:1": 4}

    def test_incomplete_snapshot_is_not_a_recovery_point(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), 1)
        sid = manager.next_id()
        manager.dir.write_journal(sid, 0, {"vdata": {}})
        with pytest.raises(SnapshotError):
            manager.latest_state()

    def test_finalize_async_requires_all_journals(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), 2)
        sid = manager.next_id()
        manager.dir.write_journal(sid, 0, {"vdata": {}})
        with pytest.raises(SnapshotError):
            manager.finalize_async(sid, {})

    def test_ids_never_reuse_partial_directories(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), 1)
        sid = manager.next_id()
        manager.dir.write_journal(sid, 0, {"vdata": {}})
        fresh = CheckpointManager(str(tmp_path), 1)
        assert fresh.next_id() == sid + 1


class TestSnapshotCadence:
    def test_count_mode(self):
        cadence = SnapshotCadence(3, 4)
        assert not cadence.due(2, 0.0)
        assert cadence.due(3, 0.0)
        cadence.mark(3, 0.0)
        assert not cadence.due(5, 100.0)
        assert cadence.due(6, 100.0)

    def test_auto_mode_needs_a_first_measurement(self):
        cadence = SnapshotCadence("auto", 64)
        assert not cadence.due(0, 0.0)
        cadence.mark(0, 0.0, cost=120.0)
        # Young's interval for 64 workers, 120 s checkpoints: ~3 h.
        assert not cadence.due(0, 3600.0)
        assert cadence.due(0, 4 * 3600.0)

    @pytest.mark.parametrize("bad", [0, -1, True, "often", 2.5])
    def test_rejects_bad_cadence(self, bad):
        with pytest.raises(SnapshotError):
            SnapshotCadence(bad, 2)
