"""Unit tests for consistency models, scopes, and lock plans (Sec. 3.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Consistency,
    LockKind,
    Scope,
    edge_key,
    lock_plan,
    read_set,
    scope_keys,
    scopes_conflict,
    vertex_key,
    write_set,
)
from repro.errors import ConsistencyError, GraphStructureError

from tests.helpers import grid_graph, path_graph, ring_graph, star_graph


class TestWriteSets:
    def test_vertex_model_writes_only_center(self):
        g = ring_graph(5)
        assert write_set(g, 0, Consistency.VERTEX) == {vertex_key(0)}

    def test_edge_model_writes_center_and_edges(self):
        g = ring_graph(5)
        ws = write_set(g, 0, Consistency.EDGE)
        assert vertex_key(0) in ws
        assert edge_key(0, 1) in ws
        assert edge_key(4, 0) in ws
        assert vertex_key(1) not in ws

    def test_full_model_writes_whole_scope(self):
        g = ring_graph(5)
        assert write_set(g, 0, Consistency.FULL) == scope_keys(g, 0)

    def test_read_set_vertex_model_unprotected(self):
        g = ring_graph(5)
        assert read_set(g, 0, Consistency.VERTEX) == {vertex_key(0)}

    def test_read_set_edge_model_covers_scope(self):
        g = ring_graph(5)
        assert read_set(g, 0, Consistency.EDGE) == scope_keys(g, 0)


class TestScopeEnforcement:
    def test_center_write_always_legal(self):
        g = ring_graph(3)
        for model in Consistency:
            scope = Scope(g, 0, model=model)
            scope.data = 7.0
            assert g.vertex_data(0) == 7.0

    def test_neighbor_write_requires_full(self):
        g = ring_graph(3)
        scope = Scope(g, 0, model=Consistency.EDGE)
        with pytest.raises(ConsistencyError):
            scope.set_neighbor(1, 0.0)
        scope_full = Scope(g, 0, model=Consistency.FULL)
        scope_full.set_neighbor(1, 5.0)
        assert g.vertex_data(1) == 5.0

    def test_edge_write_requires_edge_or_full(self):
        g = ring_graph(3)
        scope = Scope(g, 0, model=Consistency.VERTEX)
        with pytest.raises(ConsistencyError):
            scope.set_edge(0, 1, 9.0)
        Scope(g, 0, model=Consistency.EDGE).set_edge(0, 1, 9.0)
        assert g.edge_data(0, 1) == 9.0

    def test_neighbor_read_allowed_under_all_models(self):
        g = ring_graph(3)
        for model in Consistency:
            assert Scope(g, 0, model=model).neighbor(1) == 1.0

    def test_out_of_scope_vertex_rejected(self):
        g = path_graph(4)
        scope = Scope(g, 0, model=Consistency.FULL)
        with pytest.raises(ConsistencyError):
            scope.neighbor(2)
        with pytest.raises(ConsistencyError):
            scope.set_neighbor(2, 1.0)

    def test_out_of_scope_edge_rejected(self):
        g = path_graph(4)
        scope = Scope(g, 0, model=Consistency.FULL)
        with pytest.raises(ConsistencyError):
            scope.edge(1, 2)

    def test_unknown_edge_rejected(self):
        g = path_graph(4)
        scope = Scope(g, 1, model=Consistency.EDGE)
        with pytest.raises(GraphStructureError):
            scope.edge(1, 0)  # only 0 -> 1 exists

    def test_schedule_unknown_vertex_rejected(self):
        g = ring_graph(3)
        scope = Scope(g, 0)
        with pytest.raises(GraphStructureError):
            scope.schedule(99)

    def test_scope_records_accesses(self):
        g = ring_graph(3)
        scope = Scope(g, 0, model=Consistency.EDGE, record=True)
        _ = scope.data
        _ = scope.neighbor(1)
        scope.set_edge(0, 1, 2.0)
        assert vertex_key(0) in scope.reads
        assert vertex_key(1) in scope.reads
        assert edge_key(0, 1) in scope.writes

    def test_scope_structure_queries(self):
        g = star_graph(3)
        scope = Scope(g, 0)
        assert set(scope.neighbors) == {1, 2, 3}
        assert scope.degree == 3
        assert set(scope.out_neighbors) == {1, 2, 3}
        assert scope.in_neighbors == ()
        assert set(scope.adjacent_edges()) == {(0, 1), (0, 2), (0, 3)}

    def test_schedule_collects_requests(self):
        g = ring_graph(3)
        scope = Scope(g, 0)
        scope.schedule(1, priority=2.0)
        scope.schedule_neighbors()
        drained = scope.drain_scheduled()
        assert (1, 2.0) in drained
        assert len(drained) == 1 + g.degree(0)
        assert scope.drain_scheduled() == []


class TestLockPlans:
    def test_vertex_plan(self):
        g = ring_graph(5)
        assert lock_plan(g, 2, Consistency.VERTEX) == [(2, LockKind.WRITE)]

    def test_edge_plan_sorted_with_read_neighbors(self):
        g = ring_graph(5)
        plan = lock_plan(g, 2, Consistency.EDGE)
        assert plan == [
            (1, LockKind.READ),
            (2, LockKind.WRITE),
            (3, LockKind.READ),
        ]

    def test_full_plan_write_locks_neighbors(self):
        g = ring_graph(5)
        plan = lock_plan(g, 2, Consistency.FULL)
        assert all(kind is LockKind.WRITE for _v, kind in plan)
        assert [v for v, _k in plan] == [1, 2, 3]

    def test_custom_order_key(self):
        g = ring_graph(5)
        plan = lock_plan(
            g, 2, Consistency.EDGE, order_key=lambda v: -v
        )
        assert [v for v, _k in plan] == [3, 2, 1]


class TestConflicts:
    def test_same_vertex_always_conflicts(self):
        g = ring_graph(5)
        for model in Consistency:
            assert scopes_conflict(g, 0, 0, model)

    def test_vertex_model_nonadjacent_no_conflict(self):
        g = ring_graph(5)
        assert not scopes_conflict(g, 0, 1, Consistency.VERTEX)

    def test_edge_model_adjacent_conflict(self):
        g = ring_graph(5)
        assert scopes_conflict(g, 0, 1, Consistency.EDGE)
        assert not scopes_conflict(g, 0, 2, Consistency.EDGE)

    def test_full_model_distance_two_conflict(self):
        g = ring_graph(6)
        assert scopes_conflict(g, 0, 2, Consistency.FULL)
        assert not scopes_conflict(g, 0, 3, Consistency.FULL)

    @given(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15))
    @settings(max_examples=50, deadline=None)
    def test_conflict_symmetry(self, a, b):
        g = grid_graph(4, 4)
        va, vb = (a // 4, a % 4), (b // 4, b % 4)
        for model in Consistency:
            assert scopes_conflict(g, va, vb, model) == scopes_conflict(
                g, vb, va, model
            )

    def test_consistency_strength_is_monotone(self):
        """Stronger models conflict at least as often (Fig. 2c)."""
        g = grid_graph(4, 4)
        vs = list(g.vertices())
        for a in vs:
            for b in vs:
                vtx = scopes_conflict(g, a, b, Consistency.VERTEX)
                edge = scopes_conflict(g, a, b, Consistency.EDGE)
                full = scopes_conflict(g, a, b, Consistency.FULL)
                assert (not vtx) or edge
                assert (not edge) or full
