"""Property tests for the finalize-time CSR compilation (repro.core.csr).

Two guarantees are pinned down here:

* **representation equivalence** — a compiled graph answers every
  structure and data query identically to the pre-finalize dict-backed
  representation, across random graphs (vertex ids both dense ints and
  hashable tuples);
* **execution equivalence** — the pooled-scope ``SequentialEngine`` hot
  loop produces an ``EngineResult`` and final ranks bit-identical to a
  reference loop that allocates a fresh :class:`Scope` per update (the
  seed implementation's behavior) on the Fig. 1a-style PageRank
  workload.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consistency import Consistency
from repro.core.engine import SequentialEngine
from repro.core.graph import DataGraph
from repro.core.scheduler import make_scheduler
from repro.core.scope import Scope
from repro.core.update import normalize_schedule, run_update
from repro.apps.pagerank import make_pagerank_update


@st.composite
def random_graph_pair(draw):
    """The same random graph twice: one finalized (CSR), one building."""
    n = draw(st.integers(min_value=2, max_value=16))
    tuple_ids = draw(st.booleans())
    ids = [("v", i) if tuple_ids else i for i in range(n)]
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=50,
        )
    )
    edges = []
    seen = set()
    for a, b in pairs:
        if a != b and (a, b) not in seen:
            seen.add((a, b))
            edges.append((ids[a], ids[b], float(len(edges))))
    vertices = [(v, float(i)) for i, v in enumerate(ids)]
    compiled = DataGraph(vertices=vertices, edges=edges).finalize()
    building = DataGraph(vertices=vertices, edges=edges)
    return compiled, building


class TestRepresentationEquivalence:
    @given(random_graph_pair())
    @settings(max_examples=80, deadline=None)
    def test_structure_queries_identical(self, graphs):
        compiled, building = graphs
        assert compiled.num_vertices == building.num_vertices
        assert compiled.num_edges == building.num_edges
        assert list(compiled.vertices()) == list(building.vertices())
        assert list(compiled.edges()) == list(building.edges())
        assert compiled.vertex_index() == building.vertex_index()
        for v in building.vertices():
            assert compiled.has_vertex(v) and v in compiled
            assert compiled.neighbors(v) == building.neighbors(v)
            assert compiled.out_neighbors(v) == building.out_neighbors(v)
            assert compiled.in_neighbors(v) == building.in_neighbors(v)
            assert compiled.degree(v) == building.degree(v)
            assert compiled.out_degree(v) == building.out_degree(v)
            assert compiled.in_degree(v) == building.in_degree(v)
            assert tuple(compiled.adjacent_edges(v)) == tuple(
                building.adjacent_edges(v)
            )
            assert compiled.neighbor_set(v) == frozenset(building.neighbors(v))

    @given(random_graph_pair())
    @settings(max_examples=80, deadline=None)
    def test_data_queries_identical(self, graphs):
        compiled, building = graphs
        for v in building.vertices():
            assert compiled.vertex_data(v) == building.vertex_data(v)
        for (a, b) in building.edges():
            assert compiled.has_edge(a, b)
            assert compiled.edge_data(a, b) == building.edge_data(a, b)

    @given(random_graph_pair())
    @settings(max_examples=40, deadline=None)
    def test_csr_arrays_consistent_with_queries(self, graphs):
        compiled, _building = graphs
        csr = compiled.compiled
        index_of = csr.index_of
        for v in compiled.vertices():
            i = index_of[v]
            out_ids = [
                csr.vertex_ids[j]
                for j in csr.out_targets[csr.out_offsets[i]:csr.out_offsets[i + 1]]
            ]
            assert tuple(out_ids) == compiled.out_neighbors(v)
            in_ids = [
                csr.vertex_ids[j]
                for j in csr.in_sources[csr.in_offsets[i]:csr.in_offsets[i + 1]]
            ]
            assert tuple(in_ids) == compiled.in_neighbors(v)
            nbr_ids = [
                csr.vertex_ids[j]
                for j in csr.nbr_targets[csr.nbr_offsets[i]:csr.nbr_offsets[i + 1]]
            ]
            assert tuple(nbr_ids) == compiled.neighbors(v)
        for slot, (a, b) in enumerate(csr.edge_keys):
            assert csr.edge_slot[(a, b)] == slot
            assert csr.vertex_ids[csr.edge_src_index[slot]] == a
            assert csr.vertex_ids[csr.edge_dst_index[slot]] == b

    def test_data_writes_go_to_flat_arrays(self):
        g = DataGraph(vertices=[0, 1], edges=[(0, 1, 0.5)]).finalize()
        g.set_vertex_data(0, 42.0)
        g.set_edge_data(0, 1, -1.0)
        csr = g.compiled
        assert csr.vdata[csr.index_of[0]] == 42.0
        assert csr.edata[csr.edge_slot[(0, 1)]] == -1.0

    def test_copy_shares_structure_not_data(self):
        g = DataGraph(vertices=[0, 1, 2], edges=[(0, 1), (1, 2)]).finalize()
        h = g.copy()
        assert h.compiled is not g.compiled
        # Structure arrays and memo caches are the very same objects.
        assert h.compiled.index_of is g.compiled.index_of
        assert h.compiled.adj_edges is g.compiled.adj_edges
        assert h.compiled.write_set_cache is g.compiled.write_set_cache
        # Data is independent.
        h.set_vertex_data(0, "changed")
        assert g.vertex_data(0) is None


def _fig1a_style_graph(n=120, out_degree=4, seed=11):
    """Small random web graph with 1/out-degree weights (Fig. 1a shape)."""
    rng = random.Random(seed)
    edges = set()
    for i in range(n):
        while len([e for e in edges if e[0] == i]) < out_degree:
            j = rng.randrange(n)
            if j != i:
                edges.add((i, j))
    out_count = {}
    for (i, _j) in edges:
        out_count[i] = out_count.get(i, 0) + 1
    g = DataGraph()
    for i in range(n):
        g.add_vertex(i, data=1.0 / n)
    for (i, j) in sorted(edges):
        g.add_edge(i, j, data=1.0 / out_count[i])
    return g.finalize()


def _reference_run(graph, update_fn, initial, scheduler_name="fifo"):
    """The seed engine loop: fresh Scope per update, run_update choke
    point — the behavior the pooled hot loop must match bit-for-bit."""
    scheduler = make_scheduler(scheduler_name)
    scheduler.add_all(normalize_schedule(initial, graph=graph))
    counts = {}
    while scheduler:
        vertex, _prio = scheduler.pop()
        scope = Scope(graph, vertex, model=Consistency.EDGE)
        result = run_update(update_fn, scope)
        scheduler.add_all(result.scheduled)
        counts[vertex] = counts.get(vertex, 0) + 1
    return counts


class TestExecutionEquivalence:
    def test_pagerank_bit_identical_to_reference_loop(self):
        g_pooled = _fig1a_style_graph()
        g_reference = g_pooled.copy()
        update = make_pagerank_update(epsilon=1e-5)

        engine = SequentialEngine(g_pooled, update, scheduler="fifo")
        result = engine.run(initial=list(g_pooled.vertices()))

        ref_counts = _reference_run(
            g_reference, update, list(g_reference.vertices())
        )

        assert result.converged
        assert result.updates_per_vertex == ref_counts
        assert result.num_updates == sum(ref_counts.values())
        for v in g_pooled.vertices():
            # Bit-identical floats, not approximately equal.
            assert g_pooled.vertex_data(v) == g_reference.vertex_data(v)

    def test_pagerank_identical_across_graph_copies(self):
        g1 = _fig1a_style_graph(seed=23)
        g2 = g1.copy()
        update = make_pagerank_update(epsilon=1e-4)
        r1 = SequentialEngine(g1, update, scheduler="fifo").run(
            initial=list(g1.vertices())
        )
        r2 = SequentialEngine(g2, update, scheduler="fifo").run(
            initial=list(g2.vertices())
        )
        assert r1.num_updates == r2.num_updates
        assert r1.updates_per_vertex == r2.updates_per_vertex
        for v in g1.vertices():
            assert g1.vertex_data(v) == g2.vertex_data(v)

    @pytest.mark.parametrize("scheduler", ["fifo", "priority"])
    def test_gather_matches_per_call_reads(self, scheduler):
        """scope.gather_in() must equal the element-wise scope reads."""
        g = _fig1a_style_graph(n=40, seed=5)
        for v in g.vertices():
            scope = Scope(g, v, model=Consistency.EDGE)
            gathered = scope.gather_in()
            elementwise = [
                (u, scope.edge(u, v), scope.neighbor(u))
                for u in scope.in_neighbors
            ]
            assert gathered == elementwise

    def test_gather_records_reads_when_tracing(self):
        g = DataGraph(
            vertices=[0, 1, 2], edges=[(1, 0, 0.5), (2, 0, 0.25)]
        ).finalize()
        scope = Scope(g, 0, model=Consistency.EDGE, record=True)
        scope.gather_in()
        assert ("v", 1) in scope.reads and ("v", 2) in scope.reads
        assert ("e", 1, 0) in scope.reads and ("e", 2, 0) in scope.reads


class TestUnboundScopeFailsLoudly:
    def test_unbound_pooled_scope_data_raises(self):
        g = DataGraph(vertices=[0, 1], edges=[(0, 1)]).finalize()
        scope = Scope(g, None, model=Consistency.EDGE)
        with pytest.raises(TypeError):
            scope.data
        with pytest.raises(TypeError):
            scope.data = 1.0
        # After rebinding it behaves normally.
        scope.rebind(0)
        scope.data = 2.5
        assert scope.data == 2.5


class TestRecordingOnlyOnSuccess:
    def test_failed_edge_read_is_not_recorded(self):
        """A probe of a nonexistent edge direction (the get_message
        pattern) must not pollute the trace with a phantom read."""
        g = DataGraph(vertices=[0, 1], edges=[(0, 1, 1.0)]).finalize()
        scope = Scope(g, 0, model=Consistency.EDGE, record=True)
        with pytest.raises(Exception):
            scope.edge(1, 0)  # stored direction is 0 -> 1
        assert ("e", 1, 0) not in scope.reads
        scope.edge(0, 1)
        assert ("e", 0, 1) in scope.reads
