"""Serving subsystem (PR 10): GraphService, front ends, drain, and the
single-use transport contract.

The serving-semantics trio the PR pins down:

* **consistent reads** — a scope snapshot taken during a concurrent
  write storm never shows a half-applied update (every in-edge stamp
  equals the vertex stamp, because the update wrote them atomically);
* **backpressure** — a full queue sheds with a structured 429-style
  :class:`Rejection` instead of queueing unboundedly;
* **lossless drain** — ``close()`` completes every accepted request
  before tearing the runtime down, and the writes are visible in the
  collected graph.

Each runs over both front ends (in-process and socket), seeded.
"""

import random
import threading

import numpy as np
import pytest

from repro.apps.pagerank import exact_pagerank, l1_error
from repro.core import Consistency, SequentialEngine
from repro.core.graph import DataGraph
from repro.datasets import synthetic_ner
from repro.errors import EngineError, TransportError
from repro.obs.report import summarize
from repro.runtime.locking import RuntimeLockingEngine
from repro.runtime.program import REGISTERED_PROGRAMS, named_program
from repro.runtime.transport import make_transport
from repro.serve import (
    REJECT_BAD_REQUEST,
    REJECT_DRAINING,
    REJECT_QUEUE_FULL,
    GraphService,
    InprocClient,
    ReadReply,
    ReadRequest,
    Rejection,
    SocketClient,
    SocketFrontend,
    WriteReply,
    WriteRequest,
    build_serving_graph,
    run_mixed_load,
)

from helpers import ring_graph


# ----------------------------------------------------------------------
# Satellite: transports are single-use, and say so.
# ----------------------------------------------------------------------
class TestTransportSingleUse:
    @pytest.mark.parametrize("backend", ["inproc", "mp", "tcp", "tcp-loopback"])
    def test_launch_after_shutdown_is_structured(self, backend):
        transport = make_transport(backend, 1)
        transport.shutdown()
        with pytest.raises(TransportError, match="transport is single-use"):
            transport.launch([])

    def test_relaunch_after_run_is_structured(self):
        g = ring_graph(6)
        engine = RuntimeLockingEngine(
            g, named_program("pagerank"), num_workers=2, transport="inproc"
        )
        engine.run(initial=g.vertices())
        with pytest.raises(TransportError, match="transport is single-use"):
            engine.transport.launch([])

    def test_transport_error_is_an_engine_error(self):
        # Existing except EngineError handlers keep catching it.
        assert issubclass(TransportError, EngineError)


# ----------------------------------------------------------------------
# Read/write basics through the in-process front end.
# ----------------------------------------------------------------------
class TestServingBasics:
    def test_read_write_read_with_versions(self):
        graph = build_serving_graph(16, seed=1)
        with GraphService(graph, num_workers=2, telemetry=False) as service:
            client = InprocClient(service)
            first = client.read(3)
            assert isinstance(first, ReadReply)
            assert first.vertex == 3
            ack = client.write(3, 0.5, schedule=False)
            assert isinstance(ack, WriteReply)
            assert ack.scheduled == 0
            second = client.read(3)
            assert second.value == 0.5
            assert second.version > first.version

    def test_scope_read_carries_neighborhood(self):
        graph = build_serving_graph(16, seed=2)
        with GraphService(graph, num_workers=2, telemetry=False) as service:
            reply = InprocClient(service).read(5, scope=True)
            assert set(reply.neighbors) == set(graph.in_neighbors(5))
            assert set(reply.in_edges) == set(graph.in_neighbors(5))
            for _value, version in reply.neighbors.values():
                assert version >= 0

    def test_write_schedules_touched_neighborhood(self):
        graph = build_serving_graph(16, seed=3)
        with GraphService(graph, num_workers=2, telemetry=False) as service:
            ack = InprocClient(service).write(7, 0.25)
            assert ack.scheduled == len(graph.out_neighbors(7))

    def test_unknown_vertex_rejects_400(self):
        graph = build_serving_graph(8, seed=4)
        with GraphService(graph, num_workers=1, telemetry=False) as service:
            reply = InprocClient(service).read("nope")
            assert isinstance(reply, Rejection)
            assert reply.code == REJECT_BAD_REQUEST

    def test_stats_surface(self):
        graph = build_serving_graph(8, seed=5)
        with GraphService(graph, num_workers=1, telemetry=False) as service:
            client = InprocClient(service)
            client.read(0)
            client.write(1, 0.1, schedule=False)
            stats = client.stats()
            assert stats["served"] == 2
            assert stats["rejected"] == 0
            assert stats["read"]["count"] == 1
            assert stats["write"]["count"] == 1
            assert stats["queue_limit"] == service.queue_limit

    def test_service_is_single_use(self):
        graph = build_serving_graph(8, seed=6)
        service = GraphService(graph, num_workers=1, telemetry=False)
        service.start()
        service.close()
        with pytest.raises(EngineError, match="single-use"):
            service.start()

    def test_chromatic_fallback_serves(self):
        graph = build_serving_graph(12, seed=7)
        with GraphService(
            graph, engine="chromatic", num_workers=2, telemetry=False
        ) as service:
            client = InprocClient(service)
            assert isinstance(client.read(2), ReadReply)
            assert isinstance(client.write(2, 0.3), WriteReply)
            assert isinstance(client.read(2), ReadReply)


# ----------------------------------------------------------------------
# Consistent reads under a concurrent write storm (seeded, both front
# ends). The resident program stamps a vertex and all its in-edges with
# the same value in one update; a scope snapshot that ever disagrees
# has observed a half-applied update.
# ----------------------------------------------------------------------
STAMP_LIMIT = 12.0


def stamp_update(scope):
    value = scope.data + 1.0
    scope.data = value
    for u in scope.in_neighbors:
        scope.set_edge(u, scope.vertex, value)
    if value < STAMP_LIMIT:
        return (scope.vertex,)
    return None


def _stamp_graph(n: int) -> DataGraph:
    graph = DataGraph()
    for v in range(n):
        graph.add_vertex(v, data=0.0)
    for v in range(n):
        for hop in (1, 2, 3):
            graph.add_edge(v, (v + hop) % n, data=0.0)
    return graph.finalize(vertex_dtype=float, edge_dtype=float)


def _assert_scope_consistent(reply):
    __tracebackhide__ = True
    assert isinstance(reply, ReadReply)
    for u, (edge_value, _ver) in reply.in_edges.items():
        assert edge_value == reply.value, (
            f"half-applied scope at {reply.vertex}: vertex stamp "
            f"{reply.value} but in-edge {u} has {edge_value}"
        )


class TestConsistentReads:
    @pytest.mark.parametrize("frontend", ["inproc", "socket"])
    def test_scope_reads_never_half_applied(self, frontend):
        n, seed = 18, 11
        graph = _stamp_graph(n)
        service = GraphService(
            graph,
            stamp_update,
            num_workers=3,
            telemetry=False,
            consistency=Consistency.EDGE,
            warm=True,
        )
        service.start()
        sock_front = None
        try:
            rng = random.Random(seed)
            failures = []

            def make_client():
                if frontend == "socket":
                    return SocketClient(sock_front.address)
                return InprocClient(service)

            if frontend == "socket":
                sock_front = SocketFrontend(service)

            def storm(reader_seed):
                r = random.Random(reader_seed)
                client = make_client()
                try:
                    for _ in range(40):
                        reply = client.read(r.randrange(n), scope=True)
                        try:
                            _assert_scope_consistent(reply)
                        except AssertionError as exc:
                            failures.append(exc)
                            return
                finally:
                    client.close()

            readers = [
                threading.Thread(target=storm, args=(rng.randrange(1 << 30),))
                for _ in range(4)
            ]
            for t in readers:
                t.start()
            for t in readers:
                t.join()
            assert not failures, failures[0]
        finally:
            if sock_front is not None:
                sock_front.close()
            result = service.close()
        assert result.converged
        # Quiesced state: every vertex and every edge carries the limit.
        for v in range(n):
            assert graph.vertex_data(v) == STAMP_LIMIT
            for u in graph.in_neighbors(v):
                assert graph.edge_data(u, v) == STAMP_LIMIT

    def test_scope_reads_consistent_on_chromatic(self):
        n = 12
        graph = _stamp_graph(n)
        service = GraphService(
            graph,
            stamp_update,
            engine="chromatic",
            num_workers=2,
            telemetry=False,
            warm=True,
        )
        service.start()
        client = InprocClient(service)
        for v in range(n):
            _assert_scope_consistent(client.read(v, scope=True))
        result = service.close()
        assert result.converged


# ----------------------------------------------------------------------
# Backpressure: bounded queue, structured shed, nothing lost.
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_full_queue_sheds_429_style(self):
        graph = build_serving_graph(16, seed=21)
        service = GraphService(
            graph,
            num_workers=1,
            telemetry=False,
            queue_limit=2,
            batch_max=1,
            warm=False,
        )
        service.start()
        tickets, rejections = [], []
        for i in range(300):
            out = service.submit(ReadRequest(i % 16))
            if isinstance(out, Rejection):
                rejections.append(out)
            else:
                tickets.append(out)
        # A submit loop outruns barrier rounds by orders of magnitude:
        # the 2-deep queue must have shed most of the flood.
        assert rejections, "queue never filled — backpressure is broken"
        for rejection in rejections:
            assert rejection.code == REJECT_QUEUE_FULL
            assert rejection.limit == 2
            assert 0 <= rejection.depth <= 2
        # ...and every admitted request still resolves with a reply.
        for ticket in tickets:
            assert isinstance(ticket.wait(30.0), ReadReply)
        stats = service.stats()
        assert stats["rejected"] == len(rejections)
        assert stats["rejected_by_code"] == {
            REJECT_QUEUE_FULL: len(rejections)
        }
        service.close()

    def test_submit_after_close_sheds_draining(self):
        graph = build_serving_graph(8, seed=22)
        service = GraphService(graph, num_workers=1, telemetry=False)
        service.start()
        service.close()
        out = service.submit(ReadRequest(0))
        assert isinstance(out, Rejection)
        assert out.code == REJECT_DRAINING


# ----------------------------------------------------------------------
# Graceful drain: every accepted request completes, writes survive into
# the collected graph, the final snapshot lands.
# ----------------------------------------------------------------------
class TestGracefulDrain:
    def test_drain_loses_no_accepted_request(self):
        n, seed = 24, 31
        graph = build_serving_graph(n, seed=seed)
        # warm=False + schedule=False: no background program runs, so
        # the accepted write values are the vertices' final state.
        service = GraphService(
            graph, num_workers=2, telemetry=False, warm=False
        )
        service.start()
        rng = random.Random(seed)
        expected = {}
        tickets = []
        for i in range(60):
            vertex = rng.randrange(n)
            if i % 2 == 0:
                value = round(rng.uniform(0.1, 0.9), 6)
                expected[vertex] = value
                out = service.submit(
                    WriteRequest(vertex, value, schedule=False)
                )
            else:
                out = service.submit(ReadRequest(vertex))
            assert not isinstance(out, Rejection)
            tickets.append(out)
        result = service.close()  # drain begins with the queue loaded
        for ticket in tickets:
            assert ticket.done(), "drain abandoned an accepted request"
            assert not isinstance(ticket.reply, Rejection)
        assert result.converged
        # schedule=False writes are the last touch on their vertices:
        # the collected graph must carry exactly the accepted values.
        for vertex, value in expected.items():
            assert graph.vertex_data(vertex) == value

    def test_drain_over_socket_answers_every_wire_request(self):
        n, seed = 16, 32
        graph = build_serving_graph(n, seed=seed)
        service = GraphService(graph, num_workers=2, telemetry=False)
        service.start()
        frontend = SocketFrontend(service)
        outcomes = []
        lock = threading.Lock()

        def hammer(client_seed):
            rng = random.Random(client_seed)
            client = SocketClient(frontend.address)
            try:
                for _ in range(25):
                    if rng.random() < 0.3:
                        reply = client.write(
                            rng.randrange(n), rng.random(), schedule=False
                        )
                    else:
                        reply = client.read(rng.randrange(n))
                    with lock:
                        outcomes.append(reply)
            finally:
                client.close()

        threads = [
            threading.Thread(target=hammer, args=(seed + i,))
            for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        frontend.close()
        result = service.close()
        assert result.converged
        assert len(outcomes) == 75  # no hang, no dropped connection
        for reply in outcomes:
            assert isinstance(reply, (ReadReply, WriteReply))

    def test_drain_takes_final_snapshot(self, tmp_path):
        graph = build_serving_graph(12, seed=33)
        service = GraphService(
            graph,
            num_workers=2,
            telemetry=False,
            snapshot_every=10_000,  # cadence never fires: only the drain
            snapshot_dir=str(tmp_path),
        )
        service.start()
        InprocClient(service).write(0, 0.5)
        before = list(tmp_path.iterdir())
        service.close(snapshot=True)
        after = list(tmp_path.iterdir())
        assert after, "drain did not write the final checkpoint"
        assert len(after) >= len(before)


# ----------------------------------------------------------------------
# Serving telemetry: request spans + shed counter flow through
# repro.obs into the report's serving section.
# ----------------------------------------------------------------------
class TestServingTelemetry:
    def test_report_serving_section(self):
        n = 16
        graph = build_serving_graph(n, seed=41)
        service = GraphService(graph, num_workers=2, telemetry=True)
        service.start()
        client = InprocClient(service)
        outcome = run_mixed_load(client, n, 40, write_frac=0.25, seed=41)
        result = service.close()
        assert result.telemetry is not None
        report = summarize(result.telemetry)
        serving = report["serving"]
        assert serving["requests"] == outcome["reads"] + outcome["writes"]
        assert serving["read"]["count"] == outcome["reads"]
        assert serving["write"]["count"] == outcome["writes"]
        assert serving["rejected"] == 0
        for op in ("read", "write"):
            section = serving[op]
            assert 0 < section["p50_ms"] <= section["p99_ms"]
            assert section["p99_ms"] <= section["max_ms"]

    def test_shed_requests_become_counter(self):
        graph = build_serving_graph(12, seed=42)
        service = GraphService(
            graph,
            num_workers=1,
            telemetry=True,
            queue_limit=1,
            batch_max=1,
            warm=False,
        )
        service.start()
        shed = 0
        for i in range(200):
            if isinstance(service.submit(ReadRequest(i % 12)), Rejection):
                shed += 1
        result = service.close()
        assert shed > 0
        assert summarize(result.telemetry)["serving"]["rejected"] == shed


# ----------------------------------------------------------------------
# The resident program: incremental PageRank stays warm under writes.
# ----------------------------------------------------------------------
class TestDeltaPageRank:
    def test_registry_has_delta_program(self):
        assert "pagerank_delta" in REGISTERED_PROGRAMS
        assert callable(named_program("pagerank_delta").resolve())

    def test_writes_heal_back_to_exact_ranks(self):
        n, seed = 32, 51
        graph = build_serving_graph(n, seed=seed)
        truth = exact_pagerank(graph)
        service = GraphService(
            graph,
            named_program("pagerank_delta", epsilon=1e-6),
            num_workers=2,
            telemetry=False,
            touch="self",  # a perturbed vertex recomputes itself first
        )
        service.start()
        client = InprocClient(service)
        rng = random.Random(seed)
        for _ in range(10):
            client.write(rng.randrange(n), rng.uniform(0.5, 2.0) / n)
        result = service.close()
        assert result.converged
        # The delta program recomputes every perturbed vertex from its
        # neighborhood, so the client noise is fully absorbed and the
        # graph drains back to the unique PageRank fixed point.
        assert l1_error(graph, truth) < 1e-3


# ----------------------------------------------------------------------
# Satellite: CoEM registered + engine equivalence.
# ----------------------------------------------------------------------
class TestCoEMProgram:
    def test_registry_has_coem(self):
        assert "coem" in REGISTERED_PROGRAMS

    def test_runtime_matches_sequential_fixed_point(self):
        data = synthetic_ner(phrases_per_type=8, num_contexts=24, seed=61)
        sequential = data.graph.copy()
        runtime = data.graph.copy()
        program = named_program("coem", data.seeds)
        seq_result = SequentialEngine(
            sequential, program.resolve(), scheduler="fifo",
            max_updates=100000,
        ).run(initial=sequential.vertices())
        assert seq_result.converged
        run_result = RuntimeLockingEngine(
            runtime,
            program,
            num_workers=3,
            transport="inproc",
            scheduler="priority",
            consistency=Consistency.EDGE,
        ).run(initial=runtime.vertices())
        assert run_result.converged
        # Both engines drain the same epsilon-gated EM iteration; the
        # clamped seeds anchor one fixed point, so the distributions
        # agree to within the scheduling tolerance.
        for v in sequential.vertices():
            delta = float(
                np.abs(
                    sequential.vertex_data(v) - runtime.vertex_data(v)
                ).sum()
            )
            assert delta < 5e-2, f"engines disagree at {v}: L1 {delta}"
