"""Integration tests: chromatic and locking engines vs the reference
engine, locks, termination detection, snapshots, and recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Consistency, SequentialEngine, greedy_coloring
from repro.core.consistency import LockKind
from repro.core.graph import DataGraph
from repro.distributed import (
    ChromaticEngine,
    DataSizeModel,
    LockingEngine,
    VertexLockTable,
    constant_cost,
    deploy,
    install_termination,
    run_recovery,
)
from repro.errors import ColoringError, EngineError, SimulationError
from repro.sim import Cluster, SimKernel

from tests.helpers import grid_graph, ring_graph

SIZES = DataSizeModel(16, 8)
COST = constant_cost(1e6)


def flood_max(scope):
    best = scope.data
    for u in scope.neighbors:
        best = max(best, scope.neighbor(u))
    if best != scope.data:
        scope.data = best
        return [(u, best) for u in scope.neighbors]


def counting(scope):
    scope.data = scope.data + 1.0


def _grid(n=6):
    g = grid_graph(n, n)
    g.set_vertex_data((0, 0), 10.0)
    return g


class TestVertexLockTable:
    def test_readers_share(self):
        k = SimKernel()
        t = VertexLockTable(k, [0])
        a = t.request(0, LockKind.READ)
        b = t.request(0, LockKind.READ)
        k.run()
        assert a.done and b.done
        assert t.holders(0) == (2, False)

    def test_writer_excludes(self):
        k = SimKernel()
        t = VertexLockTable(k, [0])
        w = t.request(0, LockKind.WRITE)
        r = t.request(0, LockKind.READ)
        k.run()
        assert w.done and not r.done
        t.release(0, LockKind.WRITE)
        k.run()
        assert r.done

    def test_fifo_no_reader_overtake(self):
        """A reader queued behind a writer must wait (no starvation)."""
        k = SimKernel()
        t = VertexLockTable(k, [0])
        r1 = t.request(0, LockKind.READ)
        w = t.request(0, LockKind.WRITE)
        r2 = t.request(0, LockKind.READ)
        k.run()
        assert r1.done and not w.done and not r2.done
        t.release(0, LockKind.READ)
        k.run()
        assert w.done and not r2.done

    def test_release_without_hold(self):
        k = SimKernel()
        t = VertexLockTable(k, [0])
        with pytest.raises(SimulationError):
            t.release(0, LockKind.WRITE)

    def test_unknown_vertex(self):
        k = SimKernel()
        t = VertexLockTable(k, [0])
        with pytest.raises(SimulationError):
            t.request(9, LockKind.READ)


class TestTermination:
    def test_quiet_cluster_terminates(self):
        cluster = Cluster(4)
        done = []
        control = install_termination(
            cluster,
            wait_idle=lambda m: _resolved(cluster.kernel),
            take_black=lambda m: False,
            on_terminate=done.append,
        )
        control["start"]()
        cluster.kernel.run()
        assert control["state"]["terminated"]
        assert sorted(done) == [0, 1, 2, 3]

    def test_black_machine_resets_count(self):
        cluster = Cluster(3)
        blacks = {0: True, 1: False, 2: False}

        def take_black(m):
            was = blacks[m]
            blacks[m] = False
            return was

        control = install_termination(
            cluster,
            wait_idle=lambda m: _resolved(cluster.kernel),
            take_black=take_black,
            on_terminate=lambda m: None,
        )
        control["start"]()
        cluster.kernel.run()
        assert control["state"]["terminated"]
        # one reset => more hops than a single clean round
        assert control["state"]["hops"] > 3


def _resolved(kernel):
    f = kernel.event()
    f.resolve()
    return f


class TestChromaticEngine:
    def _engine(self, g, machines=3, **kw):
        dep = deploy(g, machines, partitioner="grid", skip_ingress_io=True)
        coloring = greedy_coloring(g)
        return (
            ChromaticEngine(
                dep.cluster, g, kw.pop("fn", flood_max), dep.stores,
                dep.owner, COST, SIZES, coloring=coloring, **kw
            ),
            dep,
        )

    def test_matches_sequential_reference(self):
        g1 = _grid()
        g2 = g1.copy()
        SequentialEngine(g1, flood_max).run(initial=g1.vertices())
        engine, _ = self._engine(g2)
        result = engine.run(initial=g2.vertices())
        assert result.converged
        values = engine.gather_vertex_data()
        for v in g1.vertices():
            assert values[v] == g1.vertex_data(v)

    def test_each_seed_runs_once_when_static(self):
        g = grid_graph(4, 4)
        engine, _ = self._engine(g, fn=counting)
        result = engine.run(initial=g.vertices())
        assert result.num_updates == 16
        assert all(v == 1.0 for v in engine.gather_vertex_data().values())

    def test_invalid_coloring_rejected(self):
        g = grid_graph(3, 3)
        dep = deploy(g, 2, partitioner="grid", skip_ingress_io=True)
        with pytest.raises(ColoringError):
            ChromaticEngine(
                dep.cluster, g, counting, dep.stores, dep.owner,
                COST, SIZES, coloring={v: 0 for v in g.vertices()},
            )

    def test_max_sweeps_caps(self):
        g = _grid()
        engine, _ = self._engine(g, max_sweeps=1)
        result = engine.run(initial=g.vertices())
        assert not result.converged
        assert result.sweeps == 1

    def test_network_bytes_flow(self):
        g = _grid()
        engine, dep = self._engine(g)
        result = engine.run(initial=g.vertices())
        assert sum(result.bytes_sent_per_machine.values()) > 0
        assert result.runtime > 0
        assert result.cost_dollars > 0

    def test_sync_published_to_all_machines(self):
        from repro.core import sum_sync

        g = grid_graph(4, 4)
        total = sum_sync("total", map_fn=lambda s: s.data)
        dep = deploy(g, 2, partitioner="grid", skip_ingress_io=True)
        engine = ChromaticEngine(
            dep.cluster, g, counting, dep.stores, dep.owner,
            COST, SIZES, coloring=greedy_coloring(g), syncs=[total],
        )
        result = engine.run(initial=g.vertices())
        assert result.globals["total"] == 16.0
        for m in range(2):
            assert engine.globals[m]["total"] == 16.0


class TestLockingEngine:
    def _engine(self, g, machines=3, **kw):
        dep = deploy(g, machines, partitioner="grid", skip_ingress_io=True)
        return (
            LockingEngine(
                dep.cluster, g, kw.pop("fn", flood_max), dep.stores,
                dep.owner, COST, SIZES, **kw
            ),
            dep,
        )

    def test_matches_sequential_fixed_point(self):
        g1 = _grid()
        g2 = g1.copy()
        SequentialEngine(g1, flood_max).run(initial=g1.vertices())
        engine, _ = self._engine(g2, scheduler="priority")
        result = engine.run(initial=g2.vertices())
        assert result.converged
        values = engine.gather_vertex_data()
        for v in g1.vertices():
            assert values[v] == g1.vertex_data(v)

    def test_trace_is_serializable(self):
        g = _grid(5)
        engine, _ = self._engine(g, trace=True)
        result = engine.run(initial=g.vertices())
        trace = result.extra["trace"]
        assert len(trace) == result.num_updates
        trace.check()

    def test_trace_records_real_access_sets(self):
        """Regression: the pooled per-machine scope must record reads /
        writes when the engine traces — empty access sets would make
        trace.check() pass for any interleaving."""
        g = _grid(4)
        engine, _ = self._engine(g, trace=True)
        result = engine.run(initial=g.vertices())
        trace = result.extra["trace"]
        assert len(trace) > 0
        # flood_max reads D_v and every neighbor on each execution, and
        # writes D_v whenever the flooded value changes.
        assert all(e.reads for e in trace.executions)
        assert any(e.writes for e in trace.executions)

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=8, deadline=None)
    def test_any_pipeline_length_terminates(self, pipeline):
        g = _grid(4)
        engine, _ = self._engine(g, pipeline_length=pipeline)
        result = engine.run(initial=g.vertices())
        assert result.converged
        values = engine.gather_vertex_data()
        assert all(v == 10.0 for v in values.values())

    def test_full_consistency_supported(self):
        g = _grid(4)
        engine, _ = self._engine(g, consistency=Consistency.FULL, trace=True)
        result = engine.run(initial=g.vertices())
        assert result.converged
        result.extra["trace"].check()

    def test_max_updates_stops(self):
        g = grid_graph(4, 4)

        def forever(scope):
            scope.data = scope.data + 1
            return [scope.vertex]

        engine, _ = self._engine(g, fn=forever, max_updates=40)
        result = engine.run(initial=g.vertices())
        assert not result.converged
        assert result.num_updates >= 40

    def test_pipeline_validation(self):
        g = grid_graph(3, 3)
        dep = deploy(g, 2, partitioner="grid", skip_ingress_io=True)
        with pytest.raises(EngineError):
            LockingEngine(
                dep.cluster, g, counting, dep.stores, dep.owner,
                COST, SIZES, pipeline_length=0,
            )

    def test_snapshot_requires_dfs(self):
        g = grid_graph(3, 3)
        dep = deploy(g, 2, partitioner="grid", skip_ingress_io=True)
        with pytest.raises(EngineError):
            LockingEngine(
                dep.cluster, g, counting, dep.stores, dep.owner,
                COST, SIZES, snapshot_plan=[(5, "async")],
            )


class TestSnapshotsAndRecovery:
    def _run_with_snapshot(self, mode):
        g = _grid(5)
        dep = deploy(g, 2, partitioner="grid", skip_ingress_io=True)
        engine = LockingEngine(
            dep.cluster, g, flood_max, dep.stores, dep.owner,
            COST, SIZES, dfs=dep.dfs, snapshot_plan=[(10, mode)],
        )
        result = engine.run(initial=g.vertices())
        return result, dep, engine

    def test_async_snapshot_completes_and_journals(self):
        result, dep, _ = self._run_with_snapshot("async")
        assert len(result.snapshots) == 1
        snap = result.snapshots[0]
        assert snap.mode == "async"
        assert snap.bytes_written > 0
        assert any(
            name.startswith("snapshot/0/") for name in dep.dfs.listing()
        )

    def test_sync_snapshot_completes_and_journals(self):
        result, dep, _ = self._run_with_snapshot("sync")
        assert len(result.snapshots) == 1
        assert result.snapshots[0].mode == "sync"

    def test_recovery_restores_values(self):
        result, dep, engine = self._run_with_snapshot("sync")
        # Corrupt everything, then restore.
        for store in dep.stores.values():
            for v in store.owned_vertices:
                store.set_vertex_data(v, -1.0)
        info = run_recovery(dep.dfs, 0, dep.stores)
        assert info["machines"] == 2
        assert info["seconds"] >= 0
        merged = engine.gather_vertex_data()
        assert all(value != -1.0 for value in merged.values())
        # Re-running from the recovered state reconverges exactly.
        engine2 = LockingEngine(
            dep.cluster, dep.graph, flood_max, dep.stores, dep.owner,
            COST, SIZES,
        )
        engine2.run(initial=sorted(info["reschedule"], key=repr))
        values = engine2.gather_vertex_data()
        assert all(value == 10.0 for value in values.values())

    def test_recovery_missing_snapshot(self):
        from repro.errors import SnapshotError

        g = grid_graph(3, 3)
        dep = deploy(g, 2, partitioner="grid", skip_ingress_io=True)
        with pytest.raises(SnapshotError):
            run_recovery(dep.dfs, 7, dep.stores)


class TestEngineEquivalenceProperty:
    @given(st.integers(min_value=2, max_value=4), st.integers(0, 3))
    @settings(max_examples=6, deadline=None)
    def test_locking_equals_chromatic_fixed_point(self, machines, seed):
        g1 = grid_graph(4, 4)
        g1.set_vertex_data((seed % 4, seed % 4), 5.0)
        g2 = g1.copy()
        e1, _ = (
            ChromaticEngine(
                (dep1 := deploy(g1, machines, partitioner="grid",
                                skip_ingress_io=True)).cluster,
                g1, flood_max, dep1.stores, dep1.owner, COST, SIZES,
                coloring=greedy_coloring(g1),
            ),
            None,
        )
        e1.run(initial=g1.vertices())
        dep2 = deploy(g2, machines, partitioner="hash",
                      skip_ingress_io=True)
        e2 = LockingEngine(
            dep2.cluster, g2, flood_max, dep2.stores, dep2.owner,
            COST, SIZES,
        )
        e2.run(initial=g2.vertices())
        assert e1.gather_vertex_data() == e2.gather_vertex_data()
