"""Tests for sync operations, global values, and update normalization."""

import pytest

from repro.core import (
    Consistency,
    GlobalValues,
    Scope,
    SyncOperation,
    normalize_schedule,
    run_update,
    sum_sync,
)

from tests.helpers import ring_graph


class TestNormalizeSchedule:
    def test_none_is_empty(self):
        assert normalize_schedule(None) == []

    def test_bare_ids_get_zero_priority(self):
        assert normalize_schedule([3, "a"]) == [(3, 0.0), ("a", 0.0)]

    def test_pairs_pass_through(self):
        assert normalize_schedule([(1, 2.5)]) == [(1, 2.5)]

    def test_int_priority_coerced(self):
        assert normalize_schedule([(1, 2)]) == [(1, 2.0)]

    def test_bool_second_element_is_not_priority(self):
        # (vertex, True) is a vertex id that happens to be a tuple.
        assert normalize_schedule([((1, True), 3.0)]) == [((1, True), 3.0)]

    def test_generator_input(self):
        assert normalize_schedule(v for v in [1, 2]) == [(1, 0.0), (2, 0.0)]


class TestRunUpdate:
    def test_merges_return_and_scope_schedule(self):
        g = ring_graph(4)
        scope = Scope(g, 0)

        def fn(s):
            s.schedule(1, priority=1.0)
            return [(2, 3.0)]

        result = run_update(fn, scope)
        assert (1, 1.0) in result.scheduled
        assert (2, 3.0) in result.scheduled
        assert result.vertex == 0

    def test_captures_access_sets_when_recording(self):
        g = ring_graph(4)
        scope = Scope(g, 0, record=True)

        def fn(s):
            s.data = s.neighbor(1) + 1.0

        result = run_update(fn, scope)
        assert ("v", 0) in result.writes
        assert ("v", 1) in result.reads


class TestSyncOperation:
    def test_sum_sync_computes_total(self):
        g = ring_graph(5, vdata=2.0)
        sync = sum_sync("total", map_fn=lambda s: s.data)
        assert sync.compute(g) == 10.0

    def test_finalize_applied(self):
        g = ring_graph(4, vdata=1.0)
        sync = sum_sync("mean", map_fn=lambda s: s.data, finalize_fn=lambda x: x / 4)
        assert sync.compute(g) == 1.0

    def test_vertex_subset(self):
        g = ring_graph(5, vdata=3.0)
        sync = sum_sync("partial", map_fn=lambda s: s.data)
        assert sync.compute(g, vertices=[0, 1]) == 6.0

    def test_partial_plus_combine_equals_full(self):
        """Per-machine partials combine to the global value (Eq. 2)."""
        g = ring_graph(6, vdata=1.5)
        sync = sum_sync("t", map_fn=lambda s: s.data)
        parts = [
            sync.partial(g, [0, 1]),
            sync.partial(g, [2, 3]),
            sync.partial(g, [4, 5]),
        ]
        assert sync.combine_partials(parts) == pytest.approx(sync.compute(g))

    def test_non_numeric_combiner(self):
        g = ring_graph(3, vdata=1.0)
        sync = SyncOperation(
            key="ids",
            map_fn=lambda s: {s.vertex},
            combine_fn=lambda a, b: a | b,
            zero=frozenset(),
            finalize_fn=lambda s: tuple(sorted(s)),
        )
        assert sync.compute(g) == (0, 1, 2)

    def test_map_reads_through_scope_model(self):
        g = ring_graph(3, vdata=1.0, edata=2.0)
        sync = sum_sync("edges", map_fn=lambda s: s.edge(s.vertex, s.out_neighbors[0]))
        assert sync.compute(g) == 6.0


class TestGlobalValues:
    def test_publish_and_read(self):
        gv = GlobalValues({"alpha": 0.85})
        assert gv["alpha"] == 0.85
        gv.publish("err", 1.0)
        assert gv["err"] == 1.0
        assert gv.get("missing", 7) == 7
        assert "err" in gv

    def test_versions_bump(self):
        gv = GlobalValues()
        assert gv.version("x") == 0
        gv.publish("x", 1)
        gv.publish("x", 2)
        assert gv.version("x") == 2

    def test_view_is_read_only_and_live(self):
        gv = GlobalValues()
        view = gv.view()
        gv.publish("k", 1)
        assert view["k"] == 1
        assert len(view) == 1
        assert list(view) == ["k"]
        with pytest.raises(AttributeError):
            view.publish  # noqa: B018 - attribute must not exist

    def test_snapshot_and_restore(self):
        gv = GlobalValues({"a": 1})
        snap = gv.snapshot()
        gv.publish("a", 2)
        gv.restore(snap)
        assert gv["a"] == 1
        snap["a"] = 99  # snapshot is a copy
        assert gv["a"] == 1


class TestRestoreVisibleThroughLiveViews:
    def test_restore_mutates_in_place(self):
        """Pooled scopes hold one live view for an engine's lifetime;
        restore() must mutate the underlying dict, not rebind it."""
        gv = GlobalValues({"a": 1})
        view = gv.view()  # captured once, like a pooled scope's globals
        snap = gv.snapshot()
        gv.publish("a", 2)
        assert view["a"] == 2
        gv.restore(snap)
        assert view["a"] == 1  # restore visible through the old view
