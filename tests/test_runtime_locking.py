"""Runtime pipelined locking engine: sequential consistency on real
processes (ISSUE 5, paper Sec. 4.2.2).

The contract under test is **serializability**, not bit-identity: the
distributed readers-writer locks must guarantee every run is equivalent
to some serial schedule of the executed updates. Three layers of
checks:

* **write-set disjointness** — no two scopes executing concurrently
  (same round, different workers) may intersect write sets, under every
  consistency model including VERTEX (whose racy neighbor *reads* are
  allowed by design, Fig. 1d);
* **conflict-serializability + serial replay** — under EDGE/FULL, no
  concurrent pair may conflict at all (W ∩ (R ∪ W)), and replaying the
  recorded executions in commit order ``(round, worker, position)`` on
  a single-threaded graph must land on the *identical* final values —
  the end-to-end proof that grants never outrun the ghost data they
  were serialized against;
* **fixed-point equivalence** — deterministic workloads reach the
  sequential oracle's fixed point at any worker count, and a
  single-worker run reproduces ``SequentialEngine``'s FIFO execution
  bit for bit (same values, same per-vertex histogram).

The same suite runs again under ``REPRO_NO_SHM=1`` in CI, pinning the
pickled pipe wire instead of the shared-memory plane.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.als import (
    als_program,
    initialize_factors,
    make_als_update,
    training_rmse,
)
from repro.apps.pagerank import exact_pagerank, l1_error, make_pagerank_update
from repro.core import Consistency, SequentialEngine
from repro.core.consistency import LockKind, read_set, write_set
from repro.core.graph import DataGraph
from repro.core.scope import Scope
from repro.datasets.netflix import synthetic_netflix
from repro.datasets.webgraph import power_law_web_graph
from repro.distributed.consensus import MisraToken, misra_visit
from repro.distributed.locks import RWQueueCore, build_lock_chain
from repro.errors import EngineError, SimulationError
from repro.runtime import (
    RuntimeLockingEngine,
    UpdateProgram,
    named_program,
)

from tests.helpers import grid_graph, ring_graph


# ----------------------------------------------------------------------
# Module-level update functions (must pickle by reference for mp).
# ----------------------------------------------------------------------
def flood_max(scope):
    best = scope.data
    for u in scope.neighbors:
        best = max(best, scope.neighbor(u))
    if best != scope.data:
        scope.data = best
        return [(u, best) for u in scope.neighbors]


def edge_accumulate(scope):
    """Edge-writing update (legal under EDGE/FULL)."""
    total = scope.data
    for (a, b) in scope.adjacent_edges():
        total += scope.edge(a, b)
    for (a, b) in scope.adjacent_edges():
        scope.set_edge(a, b, scope.edge(a, b) + 1.0)
    if total != scope.data:
        scope.data = total
        return None
    return None


def vertex_only_max(scope):
    """Writes D_v only (legal under every model, incl. VERTEX)."""
    best = scope.data
    for u in scope.neighbors:
        best = max(best, scope.neighbor(u))
    if best != scope.data:
        scope.data = best
        return list(scope.neighbors)
    return None


def trigger_countdown(scope):
    """Trigger vertex hands off to a countdown vertex that then
    self-schedules many purely-local executions (no routed messages)."""
    if scope.vertex == "t":
        return ["c"]
    if scope.data > 0:
        scope.data = scope.data - 1.0
        return [scope.vertex]
    return None


def push_to_neighbors(scope):
    """FULL-consistency ghost writes (remote-owned neighbor data)."""
    share = scope.data
    if share:
        for u in scope.neighbors:
            scope.set_neighbor(u, scope.neighbor(u) + share)
        scope.data = 0.0
        return list(scope.neighbors)
    return None


def graph_values(graph):
    vdata = {v: graph.vertex_data(v) for v in graph.vertices()}
    edata = {(a, b): graph.edge_data(a, b) for (a, b) in graph.edges()}
    return vdata, edata


def random_graph(num_vertices, num_edges, seed, typed=False):
    rng = random.Random(seed)
    g = DataGraph()
    for i in range(num_vertices):
        g.add_vertex(i, data=float(rng.randrange(8)))
    added = set()
    attempts = 0
    while len(added) < num_edges and attempts < num_edges * 10:
        attempts += 1
        a = rng.randrange(num_vertices)
        b = rng.randrange(num_vertices)
        if a != b and (a, b) not in added:
            added.add((a, b))
            g.add_edge(a, b, data=float(rng.randrange(4)))
    if typed:
        return g.finalize(vertex_dtype=float, edge_dtype=float)
    return g.finalize()


# ----------------------------------------------------------------------
# Shared extraction: the pure lock core and the consensus token.
# ----------------------------------------------------------------------
class TestRWQueueCore:
    def test_writer_is_exclusive_and_fifo(self):
        core = RWQueueCore([1])
        assert core.request(1, LockKind.WRITE, "w1")
        assert not core.request(1, LockKind.READ, "r1")
        assert not core.request(1, LockKind.WRITE, "w2")
        assert core.holders(1) == (0, True)
        # Release grants strictly FIFO: the queued reader first.
        assert core.release(1, LockKind.WRITE) == ["r1"]
        assert core.holders(1) == (1, False)
        assert core.release(1, LockKind.READ) == ["w2"]

    def test_reader_never_overtakes_queued_writer(self):
        core = RWQueueCore(["v"])
        assert core.request("v", LockKind.READ, "r1")
        assert not core.request("v", LockKind.WRITE, "w")
        # A late reader queues behind the writer (no starvation).
        assert not core.request("v", LockKind.READ, "r2")
        assert core.release("v", LockKind.READ) == ["w"]
        assert core.release("v", LockKind.WRITE) == ["r2"]

    def test_consecutive_readers_grant_together(self):
        core = RWQueueCore(["v"])
        assert core.request("v", LockKind.WRITE, "w")
        assert not core.request("v", LockKind.READ, "r1")
        assert not core.request("v", LockKind.READ, "r2")
        assert core.release("v", LockKind.WRITE) == ["r1", "r2"]

    def test_release_without_hold_raises(self):
        core = RWQueueCore(["v"])
        with pytest.raises(SimulationError):
            core.release("v", LockKind.WRITE)
        with pytest.raises(SimulationError):
            core.release("v", LockKind.READ)

    def test_unowned_key_raises(self):
        core = RWQueueCore(["v"])
        with pytest.raises(SimulationError):
            core.request("other", LockKind.READ, "t")


class TestMisraToken:
    def test_visit_arithmetic(self):
        assert misra_visit(2, black=True, num_machines=4) == (0, False)
        assert misra_visit(2, black=False, num_machines=4) == (3, False)
        assert misra_visit(3, black=False, num_machines=4) == (4, True)

    def test_all_idle_black_terminates_in_two_circuits(self):
        token = MisraToken(3)
        black = [True, True, True]

        def take(w):
            was = black[w]
            black[w] = False
            return was

        assert token.advance([True, True, True], take)
        assert token.terminated
        assert token.hops == 6  # one clearing circuit + one white circuit

    def test_busy_worker_blocks_the_token(self):
        token = MisraToken(3)
        black = [False, False, False]

        def take(w):
            was = black[w]
            black[w] = False
            return was

        assert not token.advance([True, False, True], take)
        assert token.at == 1  # parked at the busy worker
        # Work arrived at worker 2 meanwhile: its blackness resets the
        # count, so one more full circuit is needed.
        black[2] = True
        assert token.advance([True, True, True], take)
        assert token.terminated


class TestLockChain:
    def test_groups_follow_canonical_owner_order(self):
        g = ring_graph(6)
        index = g.vertex_index()
        owner = {v: index[v] % 3 for v in g.vertices()}
        vertex = next(iter(g.vertices()))
        chain = build_lock_chain(g, vertex, Consistency.EDGE, owner)
        owners = [machine for machine, _group in chain]
        assert owners == sorted(owners)
        flat = [(owner[v], index[v]) for _m, grp in chain for (v, _k) in grp]
        assert flat == sorted(flat)
        kinds = {
            v: kind for _m, group in chain for (v, kind) in group
        }
        assert kinds[vertex] is LockKind.WRITE
        for u in g.neighbors(vertex):
            assert kinds[u] is LockKind.READ

    def test_model_selects_lock_kinds(self):
        g = ring_graph(5)
        index = g.vertex_index()
        owner = {v: 0 for v in g.vertices()}
        vertex = next(iter(g.vertices()))
        vertex_chain = build_lock_chain(
            g, vertex, Consistency.VERTEX, owner
        )
        assert vertex_chain == [(0, [(vertex, LockKind.WRITE)])]
        full = build_lock_chain(g, vertex, Consistency.FULL, owner)
        assert all(
            kind is LockKind.WRITE for _m, grp in full for (_v, kind) in grp
        )


# ----------------------------------------------------------------------
# Serializability property (the tentpole's correctness contract).
# ----------------------------------------------------------------------
def check_trace_serializable(graph, trace, model):
    """No two same-round, cross-worker scopes may conflict.

    Write sets must be disjoint under every model; under EDGE/FULL the
    full conflict predicate (W ∩ (R ∪ W)) must be empty too — VERTEX
    deliberately leaves neighbor reads unprotected (Fig. 1d).
    """
    strict = model is not Consistency.VERTEX
    by_round = {}
    for (worker, round_no, vertex, reads, writes) in trace:
        by_round.setdefault(round_no, []).append((worker, reads, writes))
    for entries in by_round.values():
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                wi, ri, wsi = entries[i]
                wj, rj, wsj = entries[j]
                if wi == wj:
                    continue  # same worker: sequential within the round
                assert not (wsi & wsj), "concurrent write-write overlap"
                if strict:
                    assert not (wsi & (rj | wsj)), "concurrent conflict"
                    assert not (wsj & (ri | wsi)), "concurrent conflict"


def check_trace_covers_model(graph, trace, model):
    """Recorded accesses stay inside the model's read/write sets."""
    for (_worker, _round, vertex, reads, writes) in trace:
        assert writes <= write_set(graph, vertex, model)
        if model is not Consistency.VERTEX:
            assert reads <= read_set(graph, vertex, model)


def replay_serially(graph_before, trace, update_fn, model):
    """Re-execute the recorded schedule on one thread, in commit order."""
    replay = graph_before.copy()
    scope = Scope(replay, None, model=model)
    order = sorted(
        enumerate(trace), key=lambda e: (e[1][1], e[1][0], e[0])
    )
    for _pos, (_worker, _round, vertex, _reads, _writes) in order:
        scope.rebind(vertex)
        update_fn(scope)
        scope.drain_scheduled()
    return replay


class TestSerializabilityProperty:
    @given(
        seed=st.integers(0, 10_000),
        num_workers=st.integers(1, 4),
        model=st.sampled_from(
            [Consistency.VERTEX, Consistency.EDGE, Consistency.FULL]
        ),
        use_plane=st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_executed_scopes_never_conflict(
        self, seed, num_workers, model, use_plane
    ):
        rng = random.Random(seed)
        n = rng.randrange(5, 16)
        # Typed columns when the plane is requested, so both wire
        # flavors (ring descriptors and pickled batches) are exercised.
        g = random_graph(n, num_edges=2 * n, seed=seed, typed=use_plane)
        fn = vertex_only_max if model is Consistency.VERTEX else edge_accumulate
        copy = g.copy()
        result = RuntimeLockingEngine(
            copy,
            fn,
            num_workers=num_workers,
            transport="inproc",
            consistency=model,
            partitioner="hash",
            max_updates=4 * n,
            use_plane=use_plane,
            trace=True,
        ).run(initial=copy.vertices())
        trace = result.extra["trace"]
        assert len(trace) == result.num_updates
        check_trace_serializable(g, trace, model)
        check_trace_covers_model(g, trace, model)
        if model is not Consistency.VERTEX:
            # Sequential consistency end to end: the recorded schedule,
            # replayed serially, produces identical final values.
            replay = replay_serially(g, trace, fn, model)
            assert graph_values(replay) == graph_values(copy)

    @given(seed=st.integers(0, 10_000), num_workers=st.integers(2, 4))
    @settings(max_examples=6, deadline=None)
    def test_full_consistency_ghost_writes_serialize(self, seed, num_workers):
        rng = random.Random(seed)
        n = rng.randrange(6, 14)
        g = random_graph(n, num_edges=2 * n, seed=seed)
        copy = g.copy()
        result = RuntimeLockingEngine(
            copy,
            push_to_neighbors,
            num_workers=num_workers,
            transport="inproc",
            consistency=Consistency.FULL,
            max_updates=3 * n,
            trace=True,
        ).run(initial=copy.vertices())
        trace = result.extra["trace"]
        check_trace_serializable(g, trace, Consistency.FULL)
        replay = replay_serially(g, trace, push_to_neighbors, Consistency.FULL)
        assert graph_values(replay) == graph_values(copy)


# ----------------------------------------------------------------------
# Fixed-point equivalence with the sequential oracle.
# ----------------------------------------------------------------------
class TestFixedPointEquivalence:
    def test_flood_max_reaches_oracle_fixed_point_all_backends(self):
        g = grid_graph(5, 5)
        g.set_vertex_data((0, 0), 9.0)
        oracle = g.copy()
        SequentialEngine(oracle, flood_max, scheduler="fifo").run(
            initial=oracle.vertices()
        )
        expected = graph_values(oracle)
        for backend in ("inproc", "mp"):
            for workers in (1, 3):
                copy = g.copy()
                result = RuntimeLockingEngine(
                    copy, flood_max, num_workers=workers, transport=backend
                ).run(initial=copy.vertices())
                assert result.converged
                assert graph_values(copy) == expected

    def test_single_worker_is_bit_identical_to_sequential_fifo(self):
        """One worker, fully local chains: pops interleave with
        execution exactly like ``SequentialEngine`` + FIFO, so the whole
        run — values, counts, histogram — is reproduced bit for bit."""
        g = power_law_web_graph(120, out_degree=4, seed=3)
        g1, g2 = g.copy(), g.copy()
        r1 = SequentialEngine(
            g1, make_pagerank_update(epsilon=1e-6), scheduler="fifo"
        ).run(initial=g1.vertices())
        r2 = RuntimeLockingEngine(
            g2,
            UpdateProgram(make_pagerank_update, kwargs={"epsilon": 1e-6}),
            num_workers=1,
            transport="inproc",
        ).run(initial=g2.vertices())
        assert r1.num_updates == r2.num_updates
        assert r1.updates_per_vertex == r2.updates_per_vertex
        assert graph_values(g1) == graph_values(g2)

    def test_pagerank_fixed_point_matches_exact(self):
        g = power_law_web_graph(100, out_degree=4, seed=7)
        truth = exact_pagerank(g)
        for workers in (2, 4):
            copy = g.copy()
            result = RuntimeLockingEngine(
                copy,
                UpdateProgram(make_pagerank_update, kwargs={"epsilon": 1e-7}),
                num_workers=workers,
                transport="inproc",
            ).run(initial=copy.vertices())
            assert result.converged
            assert l1_error(copy, truth) < 1e-3

    def test_als_single_worker_matches_sequential(self):
        data = synthetic_netflix(
            num_users=20, num_movies=10, ratings_per_user=5, seed=2
        )
        g = data.graph
        initialize_factors(g, d=3, seed=1)
        g1, g2 = g.copy(), g.copy()
        r1 = SequentialEngine(
            g1, make_als_update(3, epsilon=1e-2), scheduler="fifo"
        ).run(initial=g1.vertices())
        r2 = RuntimeLockingEngine(
            g2,
            als_program(3, epsilon=1e-2),
            num_workers=1,
            transport="inproc",
        ).run(initial=g2.vertices())
        assert r1.num_updates == r2.num_updates
        for v in g1.vertices():
            assert np.array_equal(g1.vertex_data(v), g2.vertex_data(v))


# ----------------------------------------------------------------------
# ALS on the locking engine (the Fig. 1d workload, satellite).
# ----------------------------------------------------------------------
class TestRuntimeALS:
    def test_als_converges_on_real_processes(self):
        data = synthetic_netflix(
            num_users=24, num_movies=10, ratings_per_user=5, seed=0
        )
        g = data.graph
        initialize_factors(g, d=3, seed=1)
        before = training_rmse(g)
        result = RuntimeLockingEngine(
            g,
            als_program(3, epsilon=1e-3),
            num_workers=2,
            transport="mp",
            scheduler="priority",
            consistency=Consistency.EDGE,
        ).run(initial=g.vertices())
        assert result.converged
        assert result.backend == "mp"
        after = training_rmse(g)
        assert after < before * 0.5

    def test_als_trace_is_serializable_under_edge(self):
        data = synthetic_netflix(
            num_users=16, num_movies=8, ratings_per_user=4, seed=1
        )
        g = data.graph
        initialize_factors(g, d=3, seed=3)
        before = g.copy()
        result = RuntimeLockingEngine(
            g,
            als_program(3, epsilon=1e-2),
            num_workers=3,
            transport="inproc",
            trace=True,
        ).run(initial=g.vertices())
        trace = result.extra["trace"]
        check_trace_serializable(g, trace, Consistency.EDGE)
        replay = replay_serially(
            before, trace, make_als_update(3, epsilon=1e-2), Consistency.EDGE
        )
        for v in g.vertices():
            assert np.array_equal(replay.vertex_data(v), g.vertex_data(v))

    def test_named_program_registry(self):
        program = named_program("als", 3, epsilon=1e-2)
        assert callable(program.resolve())
        with pytest.raises(EngineError):
            named_program("not-a-program")


# ----------------------------------------------------------------------
# Pipelining, accounting, and API edges.
# ----------------------------------------------------------------------
class TestPipelineAndAccounting:
    def test_window_one_disables_overlap(self):
        """window=1 blocks the worker on every remote chain, so its
        throughput per barrier collapses versus a pipelined window —
        deterministic on inproc, so comparable exactly."""
        g = power_law_web_graph(120, out_degree=4, seed=2)
        per_round = {}
        for window in (1, 64):
            copy = g.copy()
            result = RuntimeLockingEngine(
                copy,
                UpdateProgram(make_pagerank_update, kwargs={"epsilon": 1e-5}),
                num_workers=3,
                transport="inproc",
                pipeline_window=window,
            ).run(initial=copy.vertices())
            assert result.converged
            per_round[window] = result.num_updates / result.rounds
        assert per_round[64] > per_round[1]

    def test_transport_counters_agree_across_backends(self):
        """Satellite: lock/grant sub-rounds and launch acks count the
        same bytes and rounds on both transports (deterministic run)."""
        g = grid_graph(5, 5)
        g.set_vertex_data((2, 2), 7.0)
        counters = {}
        for backend in ("inproc", "mp"):
            copy = g.copy()
            engine = RuntimeLockingEngine(
                copy, flood_max, num_workers=2, transport=backend
            )
            result = engine.run(initial=copy.vertices())
            counters[backend] = (
                engine.transport.bytes_sent,
                engine.transport.bytes_received,
                engine.transport.rounds_completed,
                result.num_updates,
            )
        assert counters["inproc"] == counters["mp"]

    def test_engine_parameter_validation(self):
        g = grid_graph(2, 2)
        with pytest.raises(EngineError):
            RuntimeLockingEngine(g, flood_max, pipeline_window=0)
        with pytest.raises(EngineError):
            RuntimeLockingEngine(g, flood_max, scheduler="sweep")
        with pytest.raises(EngineError):
            RuntimeLockingEngine(g, flood_max, round_budget=0)

    def test_engine_is_single_use(self):
        g = grid_graph(3, 3)
        engine = RuntimeLockingEngine(
            g, flood_max, num_workers=2, transport="inproc"
        )
        engine.run(initial=g.vertices())
        with pytest.raises(EngineError):
            engine.run(initial=g.vertices())

    def test_max_updates_stops_the_run(self):
        g = power_law_web_graph(80, out_degree=3, seed=5)
        copy = g.copy()
        cap = 60
        result = RuntimeLockingEngine(
            copy,
            UpdateProgram(make_pagerank_update, kwargs={"schedule": "self"}),
            num_workers=2,
            transport="inproc",
            max_updates=cap,
            round_budget=16,
        ).run(initial=copy.vertices())
        assert not result.converged
        # Round-boundary stop: bounded overshoot of one round's budget.
        assert cap <= result.num_updates <= cap + 2 * 16

    def test_termination_waits_for_in_flight_schedules(self):
        """Regression: worker 1's last update routes a schedule to
        worker 0 while every worker reports idle — the token must not
        witness a quiet circuit before that message is delivered, even
        when the receiver's remaining work is purely local (routes
        nothing) and budget-throttled across many rounds."""
        g = DataGraph()
        g.add_vertex("t", data=0.0)
        g.add_vertex("c", data=50.0)
        g.finalize()
        engine = RuntimeLockingEngine(
            g,
            trigger_countdown,
            num_workers=2,
            transport="inproc",
            assignment={"t": 0, "c": 1},
            atoms_per_worker=1,
            round_budget=1,
        )
        assert engine.owner["t"] != engine.owner["c"]
        result = engine.run(initial=["t"])
        # 1 trigger + 51 countdown executions (50 decrements + the
        # final no-op that stops self-scheduling).
        assert result.converged
        assert result.num_updates == 52
        assert g.vertex_data("c") == 0.0

    def test_result_carries_diagnostics(self):
        g = grid_graph(3, 3)
        copy = g.copy()
        result = RuntimeLockingEngine(
            copy, flood_max, num_workers=2, transport="inproc",
            pipeline_window=8,
        ).run(initial=copy.vertices())
        assert result.extra["pipeline_window"] == 8
        assert result.extra["token_hops"] >= result.num_workers
        assert result.rounds > 0 and result.bytes_on_pipe > 0
        assert sum(result.updates_per_worker.values()) == result.num_updates
        assert sum(result.updates_per_vertex.values()) == result.num_updates
