"""Repo-wide pytest configuration.

Registers the ``perf`` marker and keeps perf benchmarks out of the
tier-1 suite: ``pytest -x -q`` (the verify command) skips anything
marked ``perf``; run them explicitly with ``pytest -m perf`` or
``make perf``. The throughput *recorder* is ``make bench``
(``python -m benchmarks.perf.bench_core``), which writes
``BENCH_core.json``.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: core hot-path throughput benchmarks (non-tier-1; "
        "select with -m perf)",
    )


def pytest_collection_modifyitems(config, items):
    if "perf" in (config.option.markexpr or ""):
        return
    skip_perf = pytest.mark.skip(reason="perf benchmark: run with -m perf")
    for item in items:
        if "perf" in item.keywords:
            item.add_marker(skip_perf)
