"""Setup shim for environments without the ``wheel`` package.

The canonical metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` can use the legacy ``setup.py develop`` code path on
offline machines where PEP 660 editable wheels cannot be built.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Distributed GraphLab (Low et al., VLDB 2012)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
)
